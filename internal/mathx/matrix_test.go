package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomStochastic(r *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = r.Float64() + 0.01
		}
		Normalize(row)
	}
	return m
}

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("At/Set mismatch")
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("Row should be a view")
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone should deep-copy")
	}
}

func TestVecMatMatVec(t *testing.T) {
	m := NewMatrix(2, 2)
	// [[0.9 0.1] [0.2 0.8]]
	m.Set(0, 0, 0.9)
	m.Set(0, 1, 0.1)
	m.Set(1, 0, 0.2)
	m.Set(1, 1, 0.8)
	out := make([]float64, 2)
	m.VecMat([]float64{1, 0}, out)
	if !almostEqual(out[0], 0.9, 1e-12) || !almostEqual(out[1], 0.1, 1e-12) {
		t.Errorf("VecMat = %v", out)
	}
	m.MatVec([]float64{1, 0}, out)
	if !almostEqual(out[0], 0.9, 1e-12) || !almostEqual(out[1], 0.2, 1e-12) {
		t.Errorf("MatVec = %v", out)
	}
}

func TestVecMatPreservesMassProperty(t *testing.T) {
	// pi * P stays a distribution when P is row-stochastic and pi is a
	// distribution — the core invariant behind the HMM state update.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		p := randomStochastic(r, n)
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = r.Float64()
		}
		Normalize(pi)
		out := make([]float64, n)
		p.VecMat(pi, out)
		if !almostEqual(Sum(out), 1, 1e-9) {
			return false
		}
		for _, v := range out {
			if v < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeRowsAndIsRowStochastic(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 2)
	// Row 1 left all-zero: should become uniform.
	m.NormalizeRows()
	if !m.IsRowStochastic(1e-9) {
		t.Error("NormalizeRows should produce a stochastic matrix")
	}
	if !almostEqual(m.At(1, 0), 0.5, 1e-12) {
		t.Errorf("zero row should become uniform, got %v", m.Row(1))
	}
	bad := NewMatrix(1, 2)
	bad.Set(0, 0, 0.7)
	bad.Set(0, 1, 0.7)
	if bad.IsRowStochastic(1e-9) {
		t.Error("row summing to 1.4 should not be stochastic")
	}
}

func TestMatrixPow(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := randomStochastic(r, 3)
	// P^0 = I.
	id := p.Pow(0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(id.At(i, j), want, 1e-12) {
				t.Fatalf("Pow(0) not identity: %v", id.Data)
			}
		}
	}
	// P^3 == P*P*P.
	p3 := p.Pow(3)
	want := p.Mul(p).Mul(p)
	for i := range p3.Data {
		if !almostEqual(p3.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("Pow(3) mismatch at %d: %v vs %v", i, p3.Data[i], want.Data[i])
		}
	}
	// Powers of a stochastic matrix stay stochastic.
	if !p.Pow(10).IsRowStochastic(1e-6) {
		t.Error("P^10 should remain row-stochastic")
	}
}

func TestSolveSPD(t *testing.T) {
	// A = [[4 2][2 3]], b = [2 1] -> x = A^-1 b = [0.5, 0].
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	x, err := SolveSPD(a, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 0.5, 1e-9) || !almostEqual(x[1], 0, 1e-9) {
		t.Errorf("SolveSPD = %v", x)
	}
}

func TestSolveSPDSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if _, err := SolveSPD(a, []float64{1, 1}); err == nil {
		t.Error("expected ErrSingular for rank-deficient matrix")
	}
}

func TestSolveSPDRoundTripProperty(t *testing.T) {
	// Build SPD A = B^T B + I, random x, verify Solve(A, A x) ~= x.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += b.At(k, i) * b.At(k, j)
				}
				if i == j {
					s += 1
				}
				a.Set(i, j, s)
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		rhs := make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			rhs[i] = s
		}
		got, err := SolveSPD(a, rhs)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad shape")
		}
	}()
	NewMatrix(0, 3)
}
