package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix. It is deliberately small: the CS2P HMM
// needs row-stochastic transition matrices, vector-matrix products for the
// Markov state update (paper Eq. 4/7), and a linear solver for the ridge
// regressions used by the AR and linear baselines.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// VecMat computes x^T * M for a row vector x (len == Rows) into out
// (len == Cols). This is the distribution push-forward pi_{t+1} = pi_t * P.
// out may not alias x.
func (m *Matrix) VecMat(x, out []float64) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic("mathx: VecMat dimension mismatch")
	}
	for j := range out {
		out[j] = 0
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, p := range row {
			out[j] += xi * p
		}
	}
}

// MatVec computes M * x for a column vector x (len == Cols) into out
// (len == Rows). Used by the backward recursion. out may not alias x.
func (m *Matrix) MatVec(x, out []float64) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic("mathx: MatVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, p := range row {
			s += p * x[j]
		}
		out[i] = s
	}
}

// NormalizeRows scales every row to sum to 1; rows with non-positive or
// non-finite sums become uniform. Keeps transition matrices stochastic after
// an EM M-step with empty counts.
func (m *Matrix) NormalizeRows() {
	for i := 0; i < m.Rows; i++ {
		Normalize(m.Row(i))
	}
}

// IsRowStochastic reports whether each row is non-negative and sums to 1
// within tol.
func (m *Matrix) IsRowStochastic(tol float64) bool {
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			if v < -tol || math.IsNaN(v) {
				return false
			}
			s += v
		}
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// Pow returns M^k for a square matrix using repeated squaring. k must be
// >= 0; M^0 is the identity. Used for k-epoch-ahead prediction (Figure 9c).
func (m *Matrix) Pow(k int) *Matrix {
	if m.Rows != m.Cols {
		panic("mathx: Pow requires a square matrix")
	}
	if k < 0 {
		panic("mathx: Pow requires k >= 0")
	}
	result := Identity(m.Rows)
	base := m.Clone()
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
		k >>= 1
	}
	return result
}

// Mul returns m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic("mathx: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, mik := range mrow {
			if mik == 0 {
				continue
			}
			krow := other.Row(k)
			for j, okj := range krow {
				orow[j] += mik * okj
			}
		}
	}
	return out
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// ErrSingular is returned by SolveSPD when the system is (numerically)
// singular.
var ErrSingular = errors.New("mathx: singular matrix")

// SolveSPD solves A x = b for symmetric positive-definite A via Cholesky
// decomposition. A is not mutated. Used by the ridge regressions (AR model,
// linear SVR warm start) where A = X^T X + lambda I is SPD by construction.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("mathx: SolveSPD dimension mismatch")
	}
	// Cholesky: A = L L^T.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	// Forward solve L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
