package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCSVRoundTrip(t *testing.T) {
	d := buildDataset()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip lost sessions: %d vs %d", got.Len(), d.Len())
	}
	for i := range d.Sessions {
		if !reflect.DeepEqual(d.Sessions[i], got.Sessions[i]) {
			t.Errorf("session %d mismatch:\n%+v\n%+v", i, d.Sessions[i], got.Sessions[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := buildDataset()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.EpochSeconds != d.EpochSeconds || got.Len() != d.Len() {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !reflect.DeepEqual(d.Sessions[0], got.Sessions[0]) {
		t.Error("session 0 mismatch after JSON round trip")
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,b,c,d,e,f,g,h,i\n"))
	if err == nil {
		t.Error("expected header error")
	}
}

func TestReadCSVRejectsBadFields(t *testing.T) {
	header := strings.Join(csvHeader, ",") + "\n"
	cases := []string{
		header + "id,notanum,1.2.3.4,isp,as,p,c,s,1;2\n",
		header + "id,1700000000,1.2.3.4,isp,as,p,c,s,1;x\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDataset()
		n := 1 + r.Intn(10)
		for i := 0; i < n; i++ {
			epochs := 1 + r.Intn(20)
			tp := make([]float64, epochs)
			for j := range tp {
				tp[j] = r.Float64() * 30
			}
			d.Sessions = append(d.Sessions, &Session{
				ID:        "s" + string(rune('a'+i)),
				StartUnix: r.Int63n(1 << 40),
				Features: Features{
					ClientIP: "9.8.7.6", ISP: "i", AS: "a",
					Province: "p", City: "c", Server: "s",
				},
				Throughput: tp,
			})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(d.Sessions, got.Sessions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
