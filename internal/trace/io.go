package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV layout: one row per session.
//
//	id,start_unix,client_ip,isp,as,province,city,server,w0;w1;w2;...
//
// Throughputs are semicolon-separated Mbps values so a session stays one row
// regardless of its epoch count, which keeps multi-million-session files
// streamable.
var csvHeader = []string{
	"id", "start_unix", "client_ip", "isp", "as", "province", "city", "server", "throughput_mbps",
}

// WriteCSV writes the dataset in the session-per-row CSV layout.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	row := make([]string, len(csvHeader))
	var sb strings.Builder
	for _, s := range d.Sessions {
		sb.Reset()
		for i, t := range s.Throughput {
			if i > 0 {
				sb.WriteByte(';')
			}
			sb.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
		}
		row[0] = s.ID
		row[1] = strconv.FormatInt(s.StartUnix, 10)
		row[2] = s.Features.ClientIP
		row[3] = s.Features.ISP
		row[4] = s.Features.AS
		row[5] = s.Features.Province
		row[6] = s.Features.City
		row[7] = s.Features.Server
		row[8] = sb.String()
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing session %s: %w", s.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV. The epoch length is not part
// of the CSV; the returned dataset uses DefaultEpochSeconds.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trace: unexpected CSV header column %d: got %q, want %q", i, header[i], h)
		}
	}
	d := NewDataset()
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV line %d: %w", line, err)
		}
		start, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad start_unix %q: %w", line, row[1], err)
		}
		var tput []float64
		if row[8] != "" {
			parts := strings.Split(row[8], ";")
			tput = make([]float64, len(parts))
			for i, p := range parts {
				v, err := strconv.ParseFloat(p, 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad throughput %q: %w", line, p, err)
				}
				tput[i] = v
			}
		}
		d.Sessions = append(d.Sessions, &Session{
			ID:        row[0],
			StartUnix: start,
			Features: Features{
				ClientIP: row[2], ISP: row[3], AS: row[4],
				Province: row[5], City: row[6], Server: row[7],
			},
			Throughput: tput,
		})
	}
	return d, nil
}

// WriteJSON writes the dataset as a single JSON document. Handy for small
// example traces; the CSV form is preferred at scale.
func WriteJSON(w io.Writer, d *Dataset) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// ReadJSON reads a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON dataset: %w", err)
	}
	if d.EpochSeconds == 0 {
		d.EpochSeconds = DefaultEpochSeconds
	}
	return &d, nil
}
