// Package trace defines the throughput-measurement dataset model used
// throughout the CS2P reproduction: sessions, their descriptive features, and
// dataset-level statistics.
//
// A Session mirrors one record of the paper's iQiyi dataset (§3): a client
// downloaded video chunks over HTTP and recorded the average throughput of
// every 6-second epoch, together with the session features of Table 2
// (client IP, ISP, AS, province, city, server).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cs2p/internal/mathx"
)

// DefaultEpochSeconds is the paper's measurement epoch: clients report the
// average throughput observed over every 6-second period.
const DefaultEpochSeconds = 6.0

// Feature keys. These are the "candidate session features" of Table 2, plus
// the derived client-IP prefixes that the paper's last-mile baselines and
// Figure 4b use.
const (
	FeatClientIP = "ClientIP"
	FeatPrefix24 = "Prefix24" // client /24 prefix
	FeatPrefix16 = "Prefix16" // client /16 prefix
	FeatISP      = "ISP"
	FeatAS       = "AS"
	FeatProvince = "Province"
	FeatCity     = "City"
	FeatServer   = "Server"
)

// ClusterableFeatures are the feature keys the clustering algorithm (§5.1)
// enumerates combinations of. ClientIP itself is excluded — it is too sparse
// to aggregate on directly; the prefixes stand in for last-mile identity.
var ClusterableFeatures = []string{
	FeatISP, FeatAS, FeatProvince, FeatCity, FeatServer, FeatPrefix16,
}

// Features holds the descriptive attributes of a session. Extra carries
// dataset-specific additions (e.g. the FCC profile's connection technology
// and speed tier) without changing the schema.
type Features struct {
	ClientIP string            `json:"client_ip"`
	ISP      string            `json:"isp"`
	AS       string            `json:"as"`
	Province string            `json:"province"`
	City     string            `json:"city"`
	Server   string            `json:"server"`
	Extra    map[string]string `json:"extra,omitempty"`
}

// Get returns the value of the named feature, deriving prefixes from the
// client IP. Unknown names fall through to Extra; a missing feature returns
// the empty string.
func (f Features) Get(name string) string {
	switch name {
	case FeatClientIP:
		return f.ClientIP
	case FeatPrefix24:
		return ipPrefix(f.ClientIP, 3)
	case FeatPrefix16:
		return ipPrefix(f.ClientIP, 2)
	case FeatISP:
		return f.ISP
	case FeatAS:
		return f.AS
	case FeatProvince:
		return f.Province
	case FeatCity:
		return f.City
	case FeatServer:
		return f.Server
	default:
		return f.Extra[name]
	}
}

// ipPrefix keeps the first n dotted-quad octets: ipPrefix("1.2.3.4", 2) is
// "1.2". Malformed addresses are returned unchanged so they still group.
func ipPrefix(ip string, n int) string {
	parts := strings.Split(ip, ".")
	if len(parts) < n {
		return ip
	}
	return strings.Join(parts[:n], ".")
}

// Key concatenates the values of the given feature names into a cluster key.
// Sessions with equal keys match on every feature in names.
func (f Features) Key(names []string) string {
	vals := make([]string, len(names))
	for i, n := range names {
		vals[i] = f.Get(n)
	}
	return strings.Join(vals, "\x1f")
}

// Session is one video-download session: its features, its start time, and
// the measured average throughput (Mbps) of each epoch.
type Session struct {
	ID         string    `json:"id"`
	StartUnix  int64     `json:"start_unix"`
	Features   Features  `json:"features"`
	Throughput []float64 `json:"throughput_mbps"`
}

// Start returns the session start as a time.Time (UTC).
func (s *Session) Start() time.Time { return time.Unix(s.StartUnix, 0).UTC() }

// DurationSeconds returns the session length implied by its epoch count.
func (s *Session) DurationSeconds(epochSeconds float64) float64 {
	return float64(len(s.Throughput)) * epochSeconds
}

// MeanThroughput returns the session's average per-epoch throughput.
func (s *Session) MeanThroughput() float64 { return mathx.Mean(s.Throughput) }

// InitialThroughput returns the first epoch's throughput, the quantity the
// initial-bitrate predictors target. Returns 0 for an empty session.
func (s *Session) InitialThroughput() float64 {
	if len(s.Throughput) == 0 {
		return 0
	}
	return s.Throughput[0]
}

// CoefficientOfVariation returns stddev/mean of the per-epoch throughput,
// the intra-session variability measure of Observation 1.
func (s *Session) CoefficientOfVariation() float64 {
	return mathx.CoefficientOfVariation(s.Throughput)
}

// Validate reports structural problems with the session.
func (s *Session) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("trace: session has empty ID")
	}
	if len(s.Throughput) == 0 {
		return fmt.Errorf("trace: session %s has no epochs", s.ID)
	}
	for i, w := range s.Throughput {
		if w < 0 {
			return fmt.Errorf("trace: session %s epoch %d has negative throughput %v", s.ID, i, w)
		}
	}
	return nil
}

// Dataset is a collection of sessions sharing an epoch length.
type Dataset struct {
	EpochSeconds float64    `json:"epoch_seconds"`
	Sessions     []*Session `json:"sessions"`
}

// NewDataset creates an empty dataset with the default 6-second epoch.
func NewDataset() *Dataset {
	return &Dataset{EpochSeconds: DefaultEpochSeconds}
}

// Len returns the number of sessions.
func (d *Dataset) Len() int { return len(d.Sessions) }

// Validate checks every session.
func (d *Dataset) Validate() error {
	if d.EpochSeconds <= 0 {
		return fmt.Errorf("trace: non-positive epoch length %v", d.EpochSeconds)
	}
	for _, s := range d.Sessions {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Filter returns the sessions for which keep returns true. The returned
// dataset shares Session pointers with the receiver.
func (d *Dataset) Filter(keep func(*Session) bool) *Dataset {
	out := &Dataset{EpochSeconds: d.EpochSeconds}
	for _, s := range d.Sessions {
		if keep(s) {
			out.Sessions = append(out.Sessions, s)
		}
	}
	return out
}

// SplitByTime partitions sessions into those starting before the cut and
// those starting at/after it. The paper trains on day one and tests on day
// two (§7.1); this is the primitive behind that split.
func (d *Dataset) SplitByTime(cut time.Time) (before, after *Dataset) {
	c := cut.Unix()
	before = d.Filter(func(s *Session) bool { return s.StartUnix < c })
	after = d.Filter(func(s *Session) bool { return s.StartUnix >= c })
	return before, after
}

// GroupBy buckets sessions by the concatenated value of the given features.
func (d *Dataset) GroupBy(featureNames []string) map[string][]*Session {
	groups := make(map[string][]*Session)
	for _, s := range d.Sessions {
		k := s.Features.Key(featureNames)
		groups[k] = append(groups[k], s)
	}
	return groups
}

// AllEpochThroughputs flattens every epoch measurement in the dataset
// (the sample behind Figure 3b).
func (d *Dataset) AllEpochThroughputs() []float64 {
	n := 0
	for _, s := range d.Sessions {
		n += len(s.Throughput)
	}
	out := make([]float64, 0, n)
	for _, s := range d.Sessions {
		out = append(out, s.Throughput...)
	}
	return out
}

// Durations returns every session duration in seconds (Figure 3a).
func (d *Dataset) Durations() []float64 {
	out := make([]float64, len(d.Sessions))
	for i, s := range d.Sessions {
		out[i] = s.DurationSeconds(d.EpochSeconds)
	}
	return out
}

// Summary describes the dataset the way the paper's Table 2 does: one row
// per feature with its number of unique values, plus totals.
type Summary struct {
	Sessions     int
	Epochs       int
	EpochSeconds float64
	UniqueValues map[string]int // feature name -> distinct value count
}

// Summarize computes the Table 2 statistics for the given feature names
// (pass nil for the standard set including ClientIP).
func (d *Dataset) Summarize(featureNames []string) Summary {
	if featureNames == nil {
		featureNames = []string{
			FeatClientIP, FeatISP, FeatAS, FeatProvince, FeatCity, FeatServer,
		}
	}
	uniq := make(map[string]map[string]struct{}, len(featureNames))
	for _, f := range featureNames {
		uniq[f] = make(map[string]struct{})
	}
	epochs := 0
	for _, s := range d.Sessions {
		epochs += len(s.Throughput)
		for _, f := range featureNames {
			uniq[f][s.Features.Get(f)] = struct{}{}
		}
	}
	sum := Summary{
		Sessions:     len(d.Sessions),
		Epochs:       epochs,
		EpochSeconds: d.EpochSeconds,
		UniqueValues: make(map[string]int, len(featureNames)),
	}
	for f, set := range uniq {
		sum.UniqueValues[f] = len(set)
	}
	return sum
}

// String renders the summary as the Table 2 rows.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions=%d epochs=%d epoch_seconds=%.0f\n", s.Sessions, s.Epochs, s.EpochSeconds)
	names := make([]string, 0, len(s.UniqueValues))
	for n := range s.UniqueValues {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "feature=%s unique=%d\n", n, s.UniqueValues[n])
	}
	return b.String()
}
