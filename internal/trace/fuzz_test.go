package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the trace parser: arbitrary input must either parse
// into a dataset that round-trips, or return an error — never panic.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteCSV(&seed, buildDataset())
	f.Add(seed.String())
	f.Add("id,start_unix,client_ip,isp,as,province,city,server,throughput_mbps\n")
	f.Add("id,start_unix,client_ip,isp,as,province,city,server,throughput_mbps\nx,12,1.2.3.4,i,a,p,c,s,1;2;3\n")
	f.Add("garbage")
	f.Add("")
	f.Add("id,start_unix,client_ip,isp,as,province,city,server,throughput_mbps\nx,nan,1.2.3.4,i,a,p,c,s,;;\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must re-encode and re-parse identically.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		d2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if d2.Len() != d.Len() {
			t.Fatalf("round trip changed session count: %d -> %d", d.Len(), d2.Len())
		}
	})
}

// FuzzFeaturesGet ensures feature lookup never panics on odd IPs/names.
func FuzzFeaturesGet(f *testing.F) {
	f.Add("1.2.3.4", "ISP")
	f.Add("", "Prefix16")
	f.Add("not-an-ip", "Prefix24")
	f.Add("1.2.3.4.5.6", "ClientIP")
	f.Fuzz(func(t *testing.T, ip, name string) {
		feat := Features{ClientIP: ip}
		_ = feat.Get(name)
		_ = feat.Key([]string{name, FeatPrefix16})
	})
}
