package trace

import (
	"math"
	"testing"
	"time"
)

func sampleSession() *Session {
	return &Session{
		ID:        "s1",
		StartUnix: 1700000000,
		Features: Features{
			ClientIP: "10.20.30.40", ISP: "TelecomA", AS: "AS100",
			Province: "Zhejiang", City: "Hangzhou", Server: "srv-8",
		},
		Throughput: []float64{2, 4, 4, 4, 5, 5, 7, 9},
	}
}

func TestFeaturesGet(t *testing.T) {
	f := sampleSession().Features
	cases := map[string]string{
		FeatClientIP: "10.20.30.40",
		FeatPrefix24: "10.20.30",
		FeatPrefix16: "10.20",
		FeatISP:      "TelecomA",
		FeatAS:       "AS100",
		FeatProvince: "Zhejiang",
		FeatCity:     "Hangzhou",
		FeatServer:   "srv-8",
		"Missing":    "",
	}
	for name, want := range cases {
		if got := f.Get(name); got != want {
			t.Errorf("Get(%q) = %q, want %q", name, got, want)
		}
	}
	f.Extra = map[string]string{"ConnType": "fiber"}
	if f.Get("ConnType") != "fiber" {
		t.Error("Extra lookup failed")
	}
}

func TestIPPrefixMalformed(t *testing.T) {
	f := Features{ClientIP: "not-an-ip"}
	if got := f.Get(FeatPrefix16); got != "not-an-ip" {
		t.Errorf("malformed IP prefix = %q", got)
	}
}

func TestFeaturesKey(t *testing.T) {
	f := sampleSession().Features
	k1 := f.Key([]string{FeatISP, FeatCity})
	k2 := f.Key([]string{FeatCity, FeatISP})
	if k1 == k2 {
		t.Error("key should be order-sensitive (feature sets are canonicalized upstream)")
	}
	g := f
	g.City = "Beijing"
	if f.Key([]string{FeatISP, FeatCity}) == g.Key([]string{FeatISP, FeatCity}) {
		t.Error("different cities should produce different keys")
	}
}

func TestSessionAccessors(t *testing.T) {
	s := sampleSession()
	if got := s.Start(); !got.Equal(time.Unix(1700000000, 0)) {
		t.Errorf("Start = %v", got)
	}
	if got := s.DurationSeconds(6); got != 48 {
		t.Errorf("Duration = %v, want 48", got)
	}
	if got := s.MeanThroughput(); got != 5 {
		t.Errorf("MeanThroughput = %v, want 5", got)
	}
	if got := s.InitialThroughput(); got != 2 {
		t.Errorf("InitialThroughput = %v, want 2", got)
	}
	if got := s.CoefficientOfVariation(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("CV = %v, want 0.4", got)
	}
	empty := &Session{ID: "e"}
	if empty.InitialThroughput() != 0 {
		t.Error("empty session initial throughput should be 0")
	}
}

func TestSessionValidate(t *testing.T) {
	if err := sampleSession().Validate(); err != nil {
		t.Errorf("valid session rejected: %v", err)
	}
	if err := (&Session{Throughput: []float64{1}}).Validate(); err == nil {
		t.Error("empty ID should be invalid")
	}
	if err := (&Session{ID: "x"}).Validate(); err == nil {
		t.Error("no epochs should be invalid")
	}
	bad := sampleSession()
	bad.Throughput[3] = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative throughput should be invalid")
	}
}

func buildDataset() *Dataset {
	d := NewDataset()
	base := int64(1700000000)
	mk := func(id string, start int64, isp, city string, tput ...float64) *Session {
		return &Session{
			ID: id, StartUnix: start,
			Features: Features{
				ClientIP: "1.2.3.4", ISP: isp, AS: "AS1",
				Province: "P", City: city, Server: "s1",
			},
			Throughput: tput,
		}
	}
	d.Sessions = append(d.Sessions,
		mk("a", base, "ispA", "c1", 1, 2, 3),
		mk("b", base+3600, "ispA", "c2", 4, 5),
		mk("c", base+7200, "ispB", "c1", 6),
	)
	return d
}

func TestDatasetFilterAndSplit(t *testing.T) {
	d := buildDataset()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	ispA := d.Filter(func(s *Session) bool { return s.Features.ISP == "ispA" })
	if ispA.Len() != 2 {
		t.Errorf("Filter kept %d, want 2", ispA.Len())
	}
	before, after := d.SplitByTime(time.Unix(1700000000+3600, 0))
	if before.Len() != 1 || after.Len() != 2 {
		t.Errorf("Split = %d/%d, want 1/2", before.Len(), after.Len())
	}
}

func TestDatasetGroupBy(t *testing.T) {
	d := buildDataset()
	groups := d.GroupBy([]string{FeatISP})
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	k := d.Sessions[0].Features.Key([]string{FeatISP})
	if len(groups[k]) != 2 {
		t.Errorf("ispA group size = %d, want 2", len(groups[k]))
	}
}

func TestDatasetFlattenAndDurations(t *testing.T) {
	d := buildDataset()
	all := d.AllEpochThroughputs()
	if len(all) != 6 {
		t.Fatalf("flattened %d epochs, want 6", len(all))
	}
	dur := d.Durations()
	if dur[0] != 18 || dur[1] != 12 || dur[2] != 6 {
		t.Errorf("Durations = %v", dur)
	}
}

func TestSummarize(t *testing.T) {
	d := buildDataset()
	sum := d.Summarize(nil)
	if sum.Sessions != 3 || sum.Epochs != 6 {
		t.Errorf("summary totals = %+v", sum)
	}
	if sum.UniqueValues[FeatISP] != 2 || sum.UniqueValues[FeatCity] != 2 || sum.UniqueValues[FeatServer] != 1 {
		t.Errorf("unique counts = %v", sum.UniqueValues)
	}
	str := sum.String()
	if str == "" {
		t.Error("summary String should not be empty")
	}
}

func TestDatasetValidateErrors(t *testing.T) {
	d := buildDataset()
	d.EpochSeconds = 0
	if err := d.Validate(); err == nil {
		t.Error("zero epoch length should be invalid")
	}
}
