package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"cs2p/internal/hmm"
	"cs2p/internal/mathx"
)

// tinyStore builds the smallest valid model store by hand: a one-state HMM
// whose prediction is always mean, plus a global median. Used as fuzz seed
// material and by lifecycle tests that need distinguishable models without
// paying for training.
func tinyStore(mean float64) *ModelStore {
	m := &hmm.Model{
		Pi:    []float64{1},
		Trans: &mathx.Matrix{Rows: 1, Cols: 1, Data: []float64{1}},
		Emit:  []mathx.Gaussian{{Mu: mean, Sigma: 0.5}},
	}
	return &ModelStore{
		FullFeatures: []string{"isp"},
		Routes:       map[string]string{},
		Models:       map[string]StoredModel{},
		Global:       StoredModel{Model: m, InitialMedian: mean},
	}
}

// FuzzLoadModelStore hammers the store loader with mutated inputs. The
// contract under test: corrupt input of any shape yields an error — never a
// panic, and never a store that fails Validate (a half-install).
func FuzzLoadModelStore(f *testing.F) {
	seed, err := json.Marshal(tinyStore(3.5))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(append(append([]byte(nil), seed...), "trailing garbage"...))
	f.Add(seed[:len(seed)/2]) // truncation
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x40 // bit flip
	f.Add(flipped)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"global":{"model":null}}`))
	f.Add([]byte(`{"global":{"model":{"pi":[1],"trans":{"Rows":1,"Cols":1,"Data":[1]},"emit":[{"mu":0,"sigma":-1}]}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ms, err := LoadModelStore(bytes.NewReader(data))
		if err != nil {
			if ms != nil {
				t.Fatal("error return must not hand back a store")
			}
			return
		}
		// Whatever parsed must be fully valid and bootable.
		if verr := ms.Validate(); verr != nil {
			t.Fatalf("LoadModelStore accepted a store that fails Validate: %v", verr)
		}
		if _, berr := NewEngineFromStore(ms); berr != nil {
			t.Fatalf("validated store failed to boot: %v", berr)
		}
	})
}
