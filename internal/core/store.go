package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"cs2p/internal/cluster"
	"cs2p/internal/hmm"
	"cs2p/internal/trace"
)

// StoredModel is one cluster's deployable artifact: the midstream HMM plus a
// static initial-throughput median. The paper reports each such model at
// <5 KB (§5.3); SizeBytes verifies ours.
type StoredModel struct {
	Model         *hmm.Model `json:"model"`
	InitialMedian float64    `json:"initial_median"`
}

// SizeBytes returns the JSON size of the stored model. A marshal failure is
// reported, not swallowed: the §5.3 size budget is a deployment contract,
// and a silent 0 would read as "fits easily" exactly when the artifact is
// broken.
func (sm StoredModel) SizeBytes() (int, error) {
	b, err := json.Marshal(sm)
	if err != nil {
		return 0, fmt.Errorf("core: sizing stored model: %w", err)
	}
	return len(b), nil
}

// InitialSample is one training session's contribution to the
// initial-throughput aggregation: its start time and first-epoch throughput.
// Two numbers per session keep the index compact while letting a server
// booted from the artifact replay Eq. 6 exactly.
type InitialSample struct {
	StartUnix   int64   `json:"t"`
	InitialMbps float64 `json:"w"`
}

// InitialIndex captures the trained clusterer's observable behavior so an
// artifact-booted engine routes sessions and predicts initial throughput
// bit-identically to the engine that exported it: the winning rule per
// full-feature cell, and — for every rule feature combination in use — the
// training sessions' (start, initial-throughput) samples grouped by feature
// value, sorted by start time (the windowed Agg(M*, s) of §5.1 needs both).
type InitialIndex struct {
	// MinSessions is the training config's MinClusterSessions threshold:
	// aggregations below it fall back to the static cluster median.
	MinSessions int `json:"min_sessions"`
	// Rules maps a full-feature cell key to the cell's winning rule.
	Rules map[string]cluster.FeatureSet `json:"rules"`
	// Groups maps a rule's feature-combination key to feature-value-keyed
	// sample groups over the whole training set.
	Groups map[string]map[string][]InitialSample `json:"groups"`
}

// ModelStore is the serializable output of engine training, sufficient to
// route any new session to its model without the training dataset — this is
// what the Prediction Engine ships to video servers or clients (§5.3).
type ModelStore struct {
	// FullFeatures is the canonical feature list keying Routes.
	FullFeatures []string `json:"full_features"`
	// Routes maps a session's full-feature value key to its cluster ID.
	Routes map[string]string `json:"routes"`
	// Models holds the per-cluster artifacts.
	Models map[string]StoredModel `json:"models"`
	// Global is the fallback artifact.
	Global StoredModel `json:"global"`
	// Initial, when present, carries the initial-prediction index that lets
	// NewEngineFromStore reproduce the exporting engine's windowed Eq. 6
	// aggregation. Absent on legacy stores; static medians stand in.
	Initial *InitialIndex `json:"initial,omitempty"`
}

// Export builds the deployable store from a trained engine, including the
// initial-prediction index (the live engine's windowed aggregation state),
// so a server booted from the store predicts bit-identically. Store-backed
// engines return their backing store unchanged.
func (e *Engine) Export(train *trace.Dataset) *ModelStore {
	if e.src != nil {
		return e.src.ms
	}
	full := NewFullFeatureList(e.cfg.Cluster.CandidateFeatures)
	ms := &ModelStore{
		FullFeatures: full,
		Routes:       make(map[string]string),
		Models:       make(map[string]StoredModel),
		Global:       StoredModel{Model: e.global, InitialMedian: e.globalMed},
	}
	for id, m := range e.models {
		ms.Models[id] = StoredModel{Model: m, InitialMedian: e.medians[id]}
	}
	if train == nil {
		return ms
	}
	for _, s := range train.Sessions {
		cellKey := s.Features.Key(full)
		if _, seen := ms.Routes[cellKey]; seen {
			continue
		}
		_, id := e.clusterer.ClusterFor(s)
		if _, ok := e.models[id]; ok {
			ms.Routes[cellKey] = id
		}
	}
	ms.Initial = e.buildInitialIndex(train)
	return ms
}

// buildInitialIndex snapshots the clusterer's per-cell rule choices and the
// training sessions' (start, initial) samples for every rule combination in
// use — the global rule always included, since unseen cells fall back to it.
func (e *Engine) buildInitialIndex(train *trace.Dataset) *InitialIndex {
	idx := &InitialIndex{
		MinSessions: e.cfg.MinClusterSessions,
		Rules:       e.clusterer.Chosen(),
		Groups:      make(map[string]map[string][]InitialSample),
	}
	combos := map[string][]string{"": nil} // global rule: empty combination
	for _, rule := range idx.Rules {
		combos[rule.Key()] = rule.Features
	}
	for comboKey, feats := range combos {
		groups := make(map[string][]InitialSample)
		for _, s := range train.Sessions {
			vk := s.Features.Key(feats)
			groups[vk] = append(groups[vk], InitialSample{StartUnix: s.StartUnix, InitialMbps: s.InitialThroughput()})
		}
		for _, g := range groups {
			sort.SliceStable(g, func(i, j int) bool { return g[i].StartUnix < g[j].StartUnix })
		}
		idx.Groups[comboKey] = groups
	}
	return idx
}

// NewFullFeatureList canonicalizes (sorts, dedups) a candidate feature list,
// defaulting to trace.ClusterableFeatures. Mirrors the clustering package's
// cell keying.
func NewFullFeatureList(features []string) []string {
	if len(features) == 0 {
		features = trace.ClusterableFeatures
	}
	out := append([]string(nil), features...)
	// insertion sort (short list) keeps this dependency-free
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	dedup := out[:0]
	for i, f := range out {
		if i == 0 || f != out[i-1] {
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// Save writes the store as JSON.
func (ms *ModelStore) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(ms)
}

// LoadModelStore reads a store written by Save and validates it fully before
// returning: every model structurally sound with finite parameters, the
// initial index (when present) well-formed, and nothing after the JSON
// document (fuzzing found json.Decoder silently accepts trailing garbage).
// On any error the store is discarded whole — a caller never observes a
// half-valid store.
func LoadModelStore(r io.Reader) (*ModelStore, error) {
	dec := json.NewDecoder(r)
	var ms ModelStore
	if err := dec.Decode(&ms); err != nil {
		return nil, fmt.Errorf("core: decoding model store: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("core: decoding model store: trailing data after JSON document")
	}
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	return &ms, nil
}

// Validate checks the store's structural invariants (used by LoadModelStore
// and the artifact loader; strict so a corrupt artifact can never install).
func (ms *ModelStore) Validate() error {
	if ms.Global.Model == nil {
		return fmt.Errorf("core: model store missing global model")
	}
	if err := ms.Global.Model.Validate(); err != nil {
		return fmt.Errorf("core: global model: %w", err)
	}
	for id, sm := range ms.Models {
		if sm.Model == nil {
			return fmt.Errorf("core: cluster %q missing model", id)
		}
		if err := sm.Model.Validate(); err != nil {
			return fmt.Errorf("core: cluster %q: %w", id, err)
		}
	}
	if ms.Initial != nil {
		if err := ms.Initial.validate(); err != nil {
			return err
		}
	}
	return nil
}

// validate checks the initial-prediction index: known window kinds,
// non-negative spans, finite samples, and every rule's combination present
// in Groups (so routing can never dereference a missing group map).
func (idx *InitialIndex) validate() error {
	if idx.MinSessions < 0 {
		return fmt.Errorf("core: initial index: negative min_sessions %d", idx.MinSessions)
	}
	for cell, rule := range idx.Rules {
		switch rule.Window.Kind {
		case cluster.WindowAll, cluster.WindowHistory, cluster.WindowSameHour:
		default:
			return fmt.Errorf("core: initial index: cell %q has unknown window kind %d", cell, rule.Window.Kind)
		}
		if rule.Window.Span < 0 || rule.Window.Days < 0 {
			return fmt.Errorf("core: initial index: cell %q has negative window bounds", cell)
		}
		if _, ok := idx.Groups[rule.Key()]; !ok {
			return fmt.Errorf("core: initial index: cell %q references missing group %q", cell, rule.Key())
		}
	}
	if _, ok := idx.Groups[""]; !ok {
		return fmt.Errorf("core: initial index: missing global aggregation group")
	}
	for combo, groups := range idx.Groups {
		for vk, g := range groups {
			for i, s := range g {
				if math.IsNaN(s.InitialMbps) || math.IsInf(s.InitialMbps, 0) {
					return fmt.Errorf("core: initial index: group %q/%q sample %d has non-finite throughput", combo, vk, i)
				}
				if i > 0 && g[i-1].StartUnix > s.StartUnix {
					return fmt.Errorf("core: initial index: group %q/%q not sorted by start time", combo, vk)
				}
			}
		}
	}
	return nil
}

// Lookup returns the stored model and cluster ID for a session's features,
// falling back to the global artifact.
func (ms *ModelStore) Lookup(f trace.Features) (StoredModel, string) {
	cellKey := f.Key(ms.FullFeatures)
	if id, ok := ms.Routes[cellKey]; ok {
		if sm, ok := ms.Models[id]; ok {
			return sm, id
		}
	}
	return ms.Global, "global"
}

// NewSessionPredictor builds the Algorithm-1 predictor from the store — the
// client-side deployment path of §5.3, no training data required.
func (ms *ModelStore) NewSessionPredictor(f trace.Features) *SessionPredictor {
	sm, id := ms.Lookup(f)
	initial := sm.InitialMedian
	if math.IsNaN(initial) {
		initial = ms.Global.InitialMedian
	}
	return &SessionPredictor{
		filter:    hmm.NewFilter(sm.Model),
		initial:   initial,
		clusterID: id,
	}
}

// MaxModelSize returns the largest per-cluster artifact in bytes (the
// quantity the paper bounds at 5 KB), or an error if any model fails to
// serialize.
func (ms *ModelStore) MaxModelSize() (int, error) {
	max, err := ms.Global.SizeBytes()
	if err != nil {
		return 0, err
	}
	for id, sm := range ms.Models {
		s, err := sm.SizeBytes()
		if err != nil {
			return 0, fmt.Errorf("core: cluster %q: %w", id, err)
		}
		if s > max {
			max = s
		}
	}
	return max, nil
}
