package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"cs2p/internal/hmm"
	"cs2p/internal/trace"
)

// StoredModel is one cluster's deployable artifact: the midstream HMM plus a
// static initial-throughput median. The paper reports each such model at
// <5 KB (§5.3); SizeBytes verifies ours.
type StoredModel struct {
	Model         *hmm.Model `json:"model"`
	InitialMedian float64    `json:"initial_median"`
}

// SizeBytes returns the JSON size of the stored model.
func (sm StoredModel) SizeBytes() int {
	b, err := json.Marshal(sm)
	if err != nil {
		return 0
	}
	return len(b)
}

// ModelStore is the serializable output of engine training, sufficient to
// route any new session to its model without the training dataset — this is
// what the Prediction Engine ships to video servers or clients (§5.3).
type ModelStore struct {
	// FullFeatures is the canonical feature list keying Routes.
	FullFeatures []string `json:"full_features"`
	// Routes maps a session's full-feature value key to its cluster ID.
	Routes map[string]string `json:"routes"`
	// Models holds the per-cluster artifacts.
	Models map[string]StoredModel `json:"models"`
	// Global is the fallback artifact.
	Global StoredModel `json:"global"`
}

// Export builds the deployable store from a trained engine. Initial medians
// are the static per-cluster medians (the live engine refines them with
// time-windowed aggregation, which needs the training data).
func (e *Engine) Export(train *trace.Dataset) *ModelStore {
	full := NewFullFeatureList(e.cfg.Cluster.CandidateFeatures)
	ms := &ModelStore{
		FullFeatures: full,
		Routes:       make(map[string]string),
		Models:       make(map[string]StoredModel),
		Global:       StoredModel{Model: e.global, InitialMedian: e.globalMed},
	}
	for _, s := range train.Sessions {
		cellKey := s.Features.Key(full)
		if _, seen := ms.Routes[cellKey]; seen {
			continue
		}
		_, id := e.clusterer.ClusterFor(s)
		if _, ok := e.models[id]; ok {
			ms.Routes[cellKey] = id
		}
	}
	for id, m := range e.models {
		ms.Models[id] = StoredModel{Model: m, InitialMedian: e.medians[id]}
	}
	return ms
}

// NewFullFeatureList canonicalizes (sorts, dedups) a candidate feature list,
// defaulting to trace.ClusterableFeatures. Mirrors the clustering package's
// cell keying.
func NewFullFeatureList(features []string) []string {
	if len(features) == 0 {
		features = trace.ClusterableFeatures
	}
	out := append([]string(nil), features...)
	// insertion sort (short list) keeps this dependency-free
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	dedup := out[:0]
	for i, f := range out {
		if i == 0 || f != out[i-1] {
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// Save writes the store as JSON.
func (ms *ModelStore) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(ms)
}

// LoadModelStore reads a store written by Save and validates every model.
func LoadModelStore(r io.Reader) (*ModelStore, error) {
	var ms ModelStore
	if err := json.NewDecoder(r).Decode(&ms); err != nil {
		return nil, fmt.Errorf("core: decoding model store: %w", err)
	}
	if ms.Global.Model == nil {
		return nil, fmt.Errorf("core: model store missing global model")
	}
	if err := ms.Global.Model.Validate(); err != nil {
		return nil, fmt.Errorf("core: global model: %w", err)
	}
	for id, sm := range ms.Models {
		if sm.Model == nil {
			return nil, fmt.Errorf("core: cluster %q missing model", id)
		}
		if err := sm.Model.Validate(); err != nil {
			return nil, fmt.Errorf("core: cluster %q: %w", id, err)
		}
	}
	return &ms, nil
}

// Lookup returns the stored model and cluster ID for a session's features,
// falling back to the global artifact.
func (ms *ModelStore) Lookup(f trace.Features) (StoredModel, string) {
	cellKey := f.Key(ms.FullFeatures)
	if id, ok := ms.Routes[cellKey]; ok {
		if sm, ok := ms.Models[id]; ok {
			return sm, id
		}
	}
	return ms.Global, "global"
}

// NewSessionPredictor builds the Algorithm-1 predictor from the store — the
// client-side deployment path of §5.3, no training data required.
func (ms *ModelStore) NewSessionPredictor(f trace.Features) *SessionPredictor {
	sm, id := ms.Lookup(f)
	initial := sm.InitialMedian
	if math.IsNaN(initial) {
		initial = ms.Global.InitialMedian
	}
	return &SessionPredictor{
		filter:    hmm.NewFilter(sm.Model),
		initial:   initial,
		clusterID: id,
	}
}

// MaxModelSize returns the largest per-cluster artifact in bytes (the
// quantity the paper bounds at 5 KB).
func (ms *ModelStore) MaxModelSize() int {
	max := ms.Global.SizeBytes()
	for _, sm := range ms.Models {
		if s := sm.SizeBytes(); s > max {
			max = s
		}
	}
	return max
}
