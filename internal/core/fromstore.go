package core

import (
	"fmt"
	"math"
	"sort"

	"cs2p/internal/cluster"
	"cs2p/internal/hmm"
	"cs2p/internal/mathx"
	"cs2p/internal/trace"
)

// storeRouter replays the exporting engine's routing and initial-prediction
// behavior from the store's InitialIndex: the same chosen-rule table, the
// same sorted-by-start aggregation with the same binary-search cut and window
// filter. It is read-only after construction, so a store-backed engine is as
// shareable as a trained one.
type storeRouter struct {
	ms          *ModelStore
	full        []string
	global      cluster.FeatureSet
	minSessions int
	rules       map[string]cluster.FeatureSet
	groups      map[string]map[string][]InitialSample
}

// NewEngineFromStore builds a serving engine from a deployed artifact — the
// §5.3 path where a video server boots from shipped models with no training
// data. The store must pass Validate (LoadModelStore already guarantees it).
// With an InitialIndex present, the engine's ModelFor/PredictInitial are
// bit-identical to the engine that exported the store; legacy stores without
// one route via the Routes table and serve static medians.
func NewEngineFromStore(ms *ModelStore) (*Engine, error) {
	if ms == nil {
		return nil, fmt.Errorf("core: nil model store")
	}
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		models:    make(map[string]*hmm.Model, len(ms.Models)),
		medians:   make(map[string]float64, len(ms.Models)),
		global:    ms.Global.Model,
		globalMed: ms.Global.InitialMedian,
	}
	for id, sm := range ms.Models {
		e.models[id] = sm.Model
		e.medians[id] = sm.InitialMedian
	}
	r := &storeRouter{
		ms:     ms,
		full:   ms.FullFeatures,
		global: cluster.NewFeatureSet(nil, cluster.TimeWindow{Kind: cluster.WindowAll}),
	}
	if ms.Initial != nil {
		r.minSessions = ms.Initial.MinSessions
		r.rules = ms.Initial.Rules
		r.groups = ms.Initial.Groups
	}
	e.src = r
	return e, nil
}

// clusterFor mirrors Clusterer.ClusterFor: chosen rule for the session's
// full-feature cell, global rule for unseen cells.
func (r *storeRouter) clusterFor(s *trace.Session) (cluster.FeatureSet, string) {
	cellKey := s.Features.Key(r.full)
	rule, ok := r.rules[cellKey]
	if !ok {
		rule = r.global
	}
	return rule, cluster.ClusterID(rule, s)
}

// aggregate mirrors Clusterer.Aggregate over the stored samples: sessions
// matching the rule's features, strictly before s, filtered by the window.
func (r *storeRouter) aggregate(rule cluster.FeatureSet, s *trace.Session) []InitialSample {
	groups, ok := r.groups[rule.Key()]
	if !ok {
		return nil
	}
	g := groups[s.Features.Key(rule.Features)]
	if len(g) == 0 {
		return nil
	}
	hi := sort.Search(len(g), func(i int) bool { return g[i].StartUnix >= s.StartUnix })
	if rule.Window.Kind == cluster.WindowAll {
		return g[:hi]
	}
	var out []InitialSample
	for _, cand := range g[:hi] {
		if rule.Window.Match(cand.StartUnix, s.StartUnix) {
			out = append(out, cand)
		}
	}
	return out
}

// modelFor mirrors Engine.ModelFor over the store's models.
func (r *storeRouter) modelFor(e *Engine, s *trace.Session) (*hmm.Model, string) {
	if r.rules == nil {
		// Legacy store: route by the exported full-feature table.
		sm, id := r.ms.Lookup(s.Features)
		if id == GlobalClusterID {
			return e.global, GlobalClusterID
		}
		return sm.Model, id
	}
	rule, id := r.clusterFor(s)
	if !rule.IsGlobal() {
		if m, ok := e.models[id]; ok {
			return m, id
		}
	}
	return e.global, GlobalClusterID
}

// predictInitial mirrors Engine.PredictInitial: windowed aggregation median
// when large enough, then the cluster's static median, then the global one.
func (r *storeRouter) predictInitial(e *Engine, s *trace.Session) float64 {
	if r.rules == nil {
		sm, _ := r.ms.Lookup(s.Features)
		if !math.IsNaN(sm.InitialMedian) {
			return sm.InitialMedian
		}
		return e.globalMed
	}
	rule, id := r.clusterFor(s)
	agg := r.aggregate(rule, s)
	if len(agg) >= r.minSessions {
		vals := make([]float64, 0, len(agg))
		for _, sm := range agg {
			vals = append(vals, sm.InitialMbps)
		}
		if med := mathx.Median(vals); !math.IsNaN(med) {
			return med
		}
	}
	if med, ok := e.medians[id]; ok && !math.IsNaN(med) {
		return med
	}
	return e.globalMed
}
