package core

import (
	"context"
	"runtime"
	"testing"

	"cs2p/internal/hmm"
	"cs2p/internal/tracegen"
)

// modelsIdentical compares two HMMs for bit-identical parameters. The
// determinism contract is exact equality, not tolerance: every cluster
// trains from its own seeded RNG, so worker interleaving must not change a
// single bit of the result.
func modelsIdentical(t *testing.T, label string, a, b *hmm.Model) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("%s: state counts differ: %d vs %d", label, a.N(), b.N())
	}
	for i := range a.Pi {
		if a.Pi[i] != b.Pi[i] {
			t.Fatalf("%s: Pi[%d] differs: %v vs %v", label, i, a.Pi[i], b.Pi[i])
		}
	}
	for i, v := range a.Trans.Data {
		if v != b.Trans.Data[i] {
			t.Fatalf("%s: Trans.Data[%d] differs: %v vs %v", label, i, v, b.Trans.Data[i])
		}
	}
	for i := range a.Emit {
		if a.Emit[i] != b.Emit[i] {
			t.Fatalf("%s: Emit[%d] differs: %+v vs %+v", label, i, a.Emit[i], b.Emit[i])
		}
	}
}

func enginesIdentical(t *testing.T, seq, par *Engine) {
	t.Helper()
	if len(seq.models) != len(par.models) {
		t.Fatalf("cluster model counts differ: %d vs %d", len(seq.models), len(par.models))
	}
	for id, m := range seq.models {
		pm, ok := par.models[id]
		if !ok {
			t.Fatalf("parallel engine missing cluster %q", id)
		}
		modelsIdentical(t, "cluster "+id, m, pm)
		if seq.medians[id] != par.medians[id] {
			t.Fatalf("cluster %q medians differ: %v vs %v", id, seq.medians[id], par.medians[id])
		}
	}
	modelsIdentical(t, "global", seq.global, par.global)
	if seq.globalMed != par.globalMed {
		t.Fatalf("global medians differ: %v vs %v", seq.globalMed, par.globalMed)
	}
	if len(seq.warnings) != len(par.warnings) {
		t.Fatalf("warning counts differ: %v vs %v", seq.warnings, par.warnings)
	}
	for i := range seq.warnings {
		if seq.warnings[i] != par.warnings[i] {
			t.Fatalf("warning %d differs: %q vs %q", i, seq.warnings[i], par.warnings[i])
		}
	}
}

// TestTrainParallelMatchesSequential is the determinism invariant of the
// parallel training pipeline: Parallelism=1 (the historical sequential loop)
// and a many-worker pool must produce bit-identical engines.
func TestTrainParallelMatchesSequential(t *testing.T) {
	cfg := tracegen.SmallConfig()
	cfg.Sessions = 600
	d, _ := tracegen.Generate(cfg)

	ecfg := DefaultConfig()
	ecfg.Cluster.MinGroupSize = 10
	ecfg.HMM.NStates = 3
	ecfg.HMM.MaxIters = 15
	ecfg.MinClusterSessions = 8

	seqCfg := ecfg
	seqCfg.Parallelism = 1
	parCfg := ecfg
	parCfg.Parallelism = runtime.NumCPU()
	if parCfg.Parallelism < 4 {
		parCfg.Parallelism = 4 // force a real fan-out even on small CI boxes
	}

	seq, err := Train(d, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Train(d, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Clusters() == 0 {
		t.Fatal("degenerate fixture: no cluster models trained")
	}
	enginesIdentical(t, seq, par)
}

// TestTrainParallelMatchesSequentialSelectStates covers the cross-validated
// state-selection path, whose (candidate, fold) runs also fan out.
func TestTrainParallelMatchesSequentialSelectStates(t *testing.T) {
	cfg := tracegen.SmallConfig()
	cfg.Sessions = 300
	d, _ := tracegen.Generate(cfg)

	ecfg := DefaultConfig()
	ecfg.Cluster.MinGroupSize = 8
	ecfg.SelectStates = true
	ecfg.StateCandidates = []int{2, 3}
	ecfg.CVFolds = 2
	ecfg.HMM.MaxIters = 10
	ecfg.MinClusterSessions = 8
	ecfg.MaxClusterSessions = 30

	seqCfg := ecfg
	seqCfg.Parallelism = 1
	seqCfg.HMM.Parallelism = 1
	parCfg := ecfg
	parCfg.Parallelism = 4

	seq, err := Train(d, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Train(d, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	enginesIdentical(t, seq, par)
}

func TestTrainContextCancelled(t *testing.T) {
	cfg := tracegen.SmallConfig()
	cfg.Sessions = 300
	d, _ := tracegen.Generate(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainContext(ctx, d, DefaultConfig()); err == nil {
		t.Fatal("cancelled context should abort training")
	}
}

// TestTrainWarningsLogged checks that a failing state selection is surfaced
// through both Logf and Warnings instead of being silently swallowed.
func TestTrainWarningsLogged(t *testing.T) {
	cfg := tracegen.SmallConfig()
	cfg.Sessions = 300
	d, _ := tracegen.Generate(cfg)
	ecfg := DefaultConfig()
	ecfg.Cluster.MinGroupSize = 8
	ecfg.MinClusterSessions = 8
	ecfg.SelectStates = true
	ecfg.StateCandidates = nil // forces SelectStateCount to fail per cluster
	ecfg.CVFolds = 2
	ecfg.HMM.MaxIters = 5
	var logged []string
	ecfg.Logf = func(format string, args ...any) {
		logged = append(logged, format)
	}
	eng, err := Train(d, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Clusters() == 0 {
		t.Fatal("fallback state count should still train cluster models")
	}
	if len(eng.Warnings()) == 0 {
		t.Error("state-selection failures should be collected on Warnings")
	}
	if len(logged) == 0 {
		t.Error("state-selection failures should be reported through Logf")
	}
}
