package core

import (
	"fmt"
	"math"
	"testing"

	"cs2p/internal/trace"
)

// scaleSessions returns copies of sessions with throughput multiplied by f —
// the distribution-shift generator the online-learning tests share.
func scaleSessions(sessions []*trace.Session, f float64, tag string) []*trace.Session {
	out := make([]*trace.Session, 0, len(sessions))
	for i, s := range sessions {
		tp := make([]float64, len(s.Throughput))
		for k, w := range s.Throughput {
			tp[k] = w * f
		}
		out = append(out, &trace.Session{
			ID:         fmt.Sprintf("%s-%s-%d", tag, s.ID, i),
			StartUnix:  s.StartUnix,
			Features:   s.Features,
			Throughput: tp,
		})
	}
	return out
}

func TestOnlineLearnerValidation(t *testing.T) {
	if _, err := NewOnlineLearner(nil, DefaultOnlineConfig()); err == nil {
		t.Fatal("nil base engine accepted")
	}
	if _, err := NewOnlineLearner(&Engine{}, DefaultOnlineConfig()); err == nil {
		t.Fatal("untrained base engine accepted")
	}
}

// TestOnlineLearnerTracksShift absorbs throughput-scaled traffic and checks
// that the candidate's predictions move toward the new regime while the base
// engine stays untouched.
func TestOnlineLearnerTracksShift(t *testing.T) {
	train, test, eng := env(t)

	baseGlobalMu := eng.GlobalModel().Emit[0].Mu
	baseGlobalMed := eng.globalMed

	l, err := NewOnlineLearner(eng, DefaultOnlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	const scale = 4.0
	shifted := scaleSessions(train.Sessions[:300], scale, "shift")
	for i := 0; i < len(shifted); i += 60 {
		end := i + 60
		if end > len(shifted) {
			end = len(shifted)
		}
		if err := l.Absorb(shifted[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if l.Absorbed() == 0 {
		t.Fatal("no sessions absorbed")
	}

	fresh := trace.NewDataset()
	fresh.Sessions = shifted
	fresh.EpochSeconds = train.EpochSeconds
	cand, ms, err := l.Candidate(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if ms == nil {
		t.Fatal("nil candidate store")
	}
	if err := ms.Validate(); err != nil {
		t.Fatalf("candidate store invalid: %v", err)
	}

	// Base engine must be untouched by everything above.
	if eng.GlobalModel().Emit[0].Mu != baseGlobalMu || eng.globalMed != baseGlobalMed {
		t.Fatal("online learner mutated the base engine")
	}

	// The candidate's global initial median must have moved toward the
	// scaled regime; with a 4x shift it should clearly exceed the base.
	if cand.globalMed <= baseGlobalMed*2 {
		t.Fatalf("candidate global median %v did not track 4x shift from base %v", cand.globalMed, baseGlobalMed)
	}

	// Midstream predictions on shifted sessions should beat the incumbent's.
	shiftedTest := scaleSessions(test.Sessions[:100], scale, "shift-test")
	baseAPE := midstreamMedianAPE(eng, shiftedTest)
	candAPE := midstreamMedianAPE(cand, shiftedTest)
	if !(candAPE < baseAPE) {
		t.Fatalf("candidate midstream APE %v not better than incumbent %v on shifted traffic", candAPE, baseAPE)
	}
}

func midstreamMedianAPE(e *Engine, sessions []*trace.Session) float64 {
	var errs []float64
	for _, s := range sessions {
		p := e.NewSessionPredictor(s)
		for k, w := range s.Throughput {
			if k > 0 && w > 0 {
				errs = append(errs, math.Abs(p.Predict()-w)/w)
			}
			p.Observe(w)
		}
	}
	if len(errs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), errs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return cp[n/2-1]*0.5 + cp[n/2]*0.5
}

// TestOnlineLearnerStoreBackedBase runs the artifact-booted path: the base is
// NewEngineFromStore, and the candidate must carry the incumbent's routing
// table and initial index over unchanged while refreshing models.
func TestOnlineLearnerStoreBackedBase(t *testing.T) {
	train, _, eng := env(t)
	baseMS := eng.Export(train)
	storeEng, err := NewEngineFromStore(baseMS)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewOnlineLearner(storeEng, DefaultOnlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	shifted := scaleSessions(train.Sessions[:200], 3, "store-shift")
	if err := l.Absorb(shifted); err != nil {
		t.Fatal(err)
	}
	cand, ms, err := l.Candidate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cand.src == nil {
		t.Fatal("candidate from store-backed base is not store-backed")
	}
	if len(ms.Routes) != len(baseMS.Routes) {
		t.Fatalf("candidate routes %d != base routes %d", len(ms.Routes), len(baseMS.Routes))
	}
	if ms.Initial != baseMS.Initial {
		t.Fatal("candidate did not carry the incumbent initial index over")
	}
	if ms.Global.Model == baseMS.Global.Model {
		t.Fatal("candidate global model aliases the incumbent")
	}
	if ms.Global.InitialMedian <= baseMS.Global.InitialMedian {
		t.Fatalf("candidate global median %v did not move under 3x shift (base %v)", ms.Global.InitialMedian, baseMS.Global.InitialMedian)
	}
}

// TestOnlineLearnerEmptyAbsorb checks no-op behavior and that Candidate on an
// idle learner reproduces the incumbent's parameters.
func TestOnlineLearnerEmptyAbsorb(t *testing.T) {
	train, _, eng := env(t)
	l, err := NewOnlineLearner(eng, DefaultOnlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Absorb(nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Absorb([]*trace.Session{nil, {ID: "x"}}); err != nil {
		t.Fatal(err)
	}
	if l.Absorbed() != 0 {
		t.Fatalf("Absorbed() = %d, want 0", l.Absorbed())
	}
	cand, _, err := l.Candidate(train)
	if err != nil {
		t.Fatal(err)
	}
	if cand.globalMed != eng.globalMed {
		t.Fatal("idle candidate changed the global median")
	}
	if cand.GlobalModel().Emit[0] != eng.GlobalModel().Emit[0] {
		t.Fatal("idle candidate changed the global model")
	}
}
