package core

import (
	"bytes"
	"math"
	"testing"

	"cs2p/internal/cluster"
	"cs2p/internal/hmm"
	"cs2p/internal/mathx"
	"cs2p/internal/predict"
	"cs2p/internal/trace"
	"cs2p/internal/tracegen"
)

// trainedEngine trains one engine on a small synthetic trace, shared across
// tests (training is the expensive part).
var testEnv struct {
	train, test *trace.Dataset
	engine      *Engine
}

func env(t *testing.T) (*trace.Dataset, *trace.Dataset, *Engine) {
	t.Helper()
	if testEnv.engine == nil {
		cfg := tracegen.SmallConfig()
		cfg.Sessions = 900
		d, _ := tracegen.Generate(cfg)
		cut := d.Sessions[d.Len()*2/3].Start()
		train, test := d.SplitByTime(cut)
		ecfg := DefaultConfig()
		ecfg.Cluster.MinGroupSize = 10
		ecfg.HMM.NStates = 4
		ecfg.HMM.MaxIters = 25
		eng, err := Train(train, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		testEnv.train, testEnv.test, testEnv.engine = train, test, eng
	}
	return testEnv.train, testEnv.test, testEnv.engine
}

func TestTrainBuildsClusters(t *testing.T) {
	_, _, eng := env(t)
	if eng.Clusters() == 0 {
		t.Fatal("no cluster models trained")
	}
	if eng.GlobalModel() == nil {
		t.Fatal("no global model")
	}
	if err := eng.GlobalModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if eng.Name() != "CS2P" {
		t.Error("name mismatch")
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Error("nil dataset should fail")
	}
	if _, err := Train(trace.NewDataset(), DefaultConfig()); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestPredictInitialBeatsGlobalMedian(t *testing.T) {
	train, test, eng := env(t)
	gm := predict.NewGlobalMedian(train)
	var engErrs, gmErrs []float64
	for _, s := range test.Sessions {
		if e := mathx.AbsRelErr(eng.PredictInitial(s), s.InitialThroughput()); !math.IsNaN(e) {
			engErrs = append(engErrs, e)
		}
		if e := mathx.AbsRelErr(gm.PredictInitial(s), s.InitialThroughput()); !math.IsNaN(e) {
			gmErrs = append(gmErrs, e)
		}
	}
	me, mg := mathx.Median(engErrs), mathx.Median(gmErrs)
	if me >= mg {
		t.Errorf("CS2P initial median error %v should beat global median %v", me, mg)
	}
	t.Logf("initial median error: CS2P=%.3f global=%.3f", me, mg)
}

func TestMidstreamBeatsBaselines(t *testing.T) {
	_, test, eng := env(t)
	sessions := test.Sessions
	if len(sessions) > 150 {
		sessions = sessions[:150]
	}
	cs2p := predict.Summarize(predict.EvaluateMidstream(eng, sessions, 1))
	ls := predict.Summarize(predict.EvaluateMidstream(predict.LS{}, sessions, 1))
	hm := predict.Summarize(predict.EvaluateMidstream(predict.HM{}, sessions, 1))
	t.Logf("midstream flat median: CS2P=%.3f LS=%.3f HM=%.3f", cs2p.FlatMedian, ls.FlatMedian, hm.FlatMedian)
	if cs2p.FlatMedian >= ls.FlatMedian {
		t.Errorf("CS2P (%v) should beat LS (%v)", cs2p.FlatMedian, ls.FlatMedian)
	}
	if cs2p.FlatMedian >= hm.FlatMedian {
		t.Errorf("CS2P (%v) should beat HM (%v)", cs2p.FlatMedian, hm.FlatMedian)
	}
}

func TestSessionPredictorAlgorithm1(t *testing.T) {
	_, test, eng := env(t)
	s := test.Sessions[0]
	p := eng.NewSessionPredictor(s)
	// Before any observation, Predict returns the cluster median at every
	// horizon (Algorithm 1 line 5).
	if p.Predict() != p.InitialPrediction() {
		t.Error("initial Predict should equal the cluster median")
	}
	if p.PredictAhead(5) != p.InitialPrediction() {
		t.Error("initial PredictAhead should equal the cluster median")
	}
	if p.ClusterID() == "" {
		t.Error("empty cluster ID")
	}
	p.Observe(s.Throughput[0])
	if !p.Filter().Started() {
		t.Error("filter should have started")
	}
	mid := p.Predict()
	if math.IsNaN(mid) || mid <= 0 {
		t.Errorf("midstream prediction = %v", mid)
	}
}

func TestModelForFallsBackToGlobal(t *testing.T) {
	_, _, eng := env(t)
	alien := &trace.Session{
		ID: "alien", StartUnix: 1999999999,
		Features:   trace.Features{ClientIP: "250.250.0.1", ISP: "no-such", City: "none", Server: "zzz"},
		Throughput: []float64{1},
	}
	m, id := eng.ModelFor(alien)
	if id != "global" || m != eng.GlobalModel() {
		t.Errorf("alien session should use the global model, got %q", id)
	}
	p := eng.NewSessionPredictor(alien)
	if math.IsNaN(p.Predict()) {
		t.Error("global fallback should still predict")
	}
}

func TestExportLookupRoundTrip(t *testing.T) {
	train, test, eng := env(t)
	ms := eng.Export(train)
	if len(ms.Models) != eng.Clusters() {
		t.Errorf("store has %d models, engine %d", len(ms.Models), eng.Clusters())
	}
	var buf bytes.Buffer
	if err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Models) != len(ms.Models) || len(loaded.Routes) != len(ms.Routes) {
		t.Error("store round-trip lost entries")
	}
	// The store-based predictor must agree with the engine's model routing.
	s := test.Sessions[0]
	_, wantID := eng.ModelFor(s)
	sm, gotID := loaded.Lookup(s.Features)
	if gotID != wantID {
		// Routing can differ only when the cell was unseen in train.
		t.Logf("store routed %q, engine %q (acceptable for unseen cells)", gotID, wantID)
	}
	if sm.Model == nil {
		t.Fatal("lookup returned nil model")
	}
	p := loaded.NewSessionPredictor(s.Features)
	if math.IsNaN(p.Predict()) {
		t.Error("store predictor should predict")
	}
	p.Observe(2.0)
	if math.IsNaN(p.Predict()) {
		t.Error("store predictor should predict after observation")
	}
}

func TestModelSizeBudget(t *testing.T) {
	train, _, eng := env(t)
	ms := eng.Export(train)
	max, err := ms.MaxModelSize()
	if err != nil {
		t.Fatal(err)
	}
	if max > 5*1024 {
		t.Errorf("largest model artifact = %d bytes, paper budget is 5KB", max)
	}
}

func TestLoadModelStoreRejectsBad(t *testing.T) {
	if _, err := LoadModelStore(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := LoadModelStore(bytes.NewReader([]byte("{}"))); err == nil {
		t.Error("missing global model should fail")
	}
}

func TestNewFullFeatureList(t *testing.T) {
	got := NewFullFeatureList([]string{"b", "a", "b"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("canonical list = %v", got)
	}
	if def := NewFullFeatureList(nil); len(def) != len(trace.ClusterableFeatures) {
		t.Errorf("default list = %v", def)
	}
}

func TestSelectStatesPath(t *testing.T) {
	// Exercise the per-cluster cross-validation branch on a tiny trace.
	cfg := tracegen.SmallConfig()
	cfg.Sessions = 250
	d, _ := tracegen.Generate(cfg)
	ecfg := DefaultConfig()
	ecfg.Cluster.MinGroupSize = 8
	ecfg.SelectStates = true
	ecfg.StateCandidates = []int{2, 3}
	ecfg.CVFolds = 2
	ecfg.HMM.MaxIters = 10
	ecfg.MaxClusterSessions = 30
	eng, err := Train(d, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.GlobalModel() == nil {
		t.Fatal("missing global model")
	}
}

var _ = hmm.DefaultTrainConfig // keep import grouping honest if unused later
var _ = cluster.DefaultConfig
