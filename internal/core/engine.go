// Package core implements the CS2P system of the paper (§4-§5): the
// Prediction Engine that trains per-cluster throughput models offline
// (session clustering + a Gaussian HMM and an initial-throughput median per
// cluster) and the per-session online predictor that runs the paper's
// Algorithm 1.
//
// Workflow (paper Figure 1):
//
//	train := ... // past sessions with features and per-epoch throughput
//	engine, err := core.Train(train, core.DefaultConfig())
//	p := engine.NewSession(newSession)   // stage 2: predicting
//	w0 := p.Predict()                    // initial epoch: cluster median
//	p.Observe(measured0)                 // update HMM posterior
//	w1 := p.Predict()                    // midstream: HMM MLE state mean
//
// The engine implements predict.Factory and predict.Initial so it slots into
// the same evaluation harness as every baseline.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"cs2p/internal/cluster"
	"cs2p/internal/hmm"
	"cs2p/internal/obs"
	"cs2p/internal/parallel"
	"cs2p/internal/predict"
	"cs2p/internal/trace"
)

// Config controls engine training.
type Config struct {
	// Cluster configures the §5.1 session-clustering search.
	Cluster cluster.Config
	// HMM configures per-cluster Baum-Welch training; HMM.NStates is used
	// when SelectStates is false.
	HMM hmm.TrainConfig
	// SelectStates enables per-cluster cross-validated state-count
	// selection over StateCandidates (§7.1). Expensive; the default uses
	// the fixed cross-validated global choice in HMM.NStates.
	SelectStates    bool
	StateCandidates []int
	CVFolds         int
	// MinClusterSessions is the minimum number of member sessions needed
	// to train a dedicated cluster HMM; smaller clusters use the global
	// model (the paper's fallback, §5.1).
	MinClusterSessions int
	// MaxClusterSessions caps the sequences per cluster HMM (stride
	// subsample) to bound EM cost. 0 means no cap.
	MaxClusterSessions int
	// GlobalSessions caps the global fallback HMM's training set.
	GlobalSessions int
	// Parallelism bounds the offline-training worker fan-out: per-cluster
	// HMM training, cross-validated state selection, and the clustering
	// rule search all share the knob. 0 means one worker per CPU, 1
	// reproduces the historical sequential behavior. Every cluster trains
	// from its own seeded RNG, so the trained engine is identical at every
	// setting.
	Parallelism int
	// Logf, when non-nil, receives training diagnostics (clusters that
	// fell back to the global model, failed state selections). nil
	// discards them; the same messages are always collected on the
	// engine's Warnings.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives offline-training telemetry
	// (per-cluster fit time, EM iteration counts, CV candidate scores,
	// cluster-rule-search timings) and is forwarded to the HMM and
	// clustering stages. Trained models are identical with or without it.
	Metrics *obs.Registry
}

func (cfg Config) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// DefaultConfig returns the settings used across the reproduction: the
// paper's 6-state HMM, the default clustering lattice, and laptop-scale
// training caps.
func DefaultConfig() Config {
	return Config{
		Cluster:            cluster.DefaultConfig(),
		HMM:                hmm.DefaultTrainConfig(),
		SelectStates:       false,
		StateCandidates:    []int{2, 4, 6, 8},
		CVFolds:            4,
		MinClusterSessions: 10,
		MaxClusterSessions: 80,
		GlobalSessions:     300,
	}
}

// Engine is a trained CS2P Prediction Engine.
type Engine struct {
	cfg       Config
	clusterer *cluster.Clusterer
	models    map[string]*hmm.Model // cluster ID -> midstream model
	medians   map[string]float64    // cluster ID -> fallback initial median
	global    *hmm.Model
	globalMed float64
	warnings  []string
	// src is non-nil on engines booted from a deployed artifact
	// (NewEngineFromStore): routing and initial prediction replay the
	// store's InitialIndex instead of a live clusterer.
	src *storeRouter
}

// Train builds the engine: runs the clustering search, trains one HMM per
// realized cluster, and fits the global fallback model.
func Train(train *trace.Dataset, cfg Config) (*Engine, error) {
	return TrainContext(context.Background(), train, cfg)
}

// clusterModel is the output of one cluster's training worker. A nil Model
// means the cluster degenerated and will be served by the global fallback.
type clusterModel struct {
	model  *hmm.Model
	median float64
	warns  []string
}

// TrainContext is Train with cancellation. Per-cluster training fans out
// across cfg.Parallelism workers (see Config.Parallelism); cancelling ctx
// aborts training and returns ctx's error.
func TrainContext(ctx context.Context, train *trace.Dataset, cfg Config) (*Engine, error) {
	if train == nil || train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training dataset")
	}
	if cfg.MinClusterSessions <= 0 {
		cfg.MinClusterSessions = 10
	}
	e := &Engine{
		cfg:     cfg,
		models:  make(map[string]*hmm.Model),
		medians: make(map[string]float64),
	}
	trainStart := time.Now()
	ccfg := cfg.Cluster
	if ccfg.Parallelism == 0 {
		ccfg.Parallelism = cfg.Parallelism
	}
	if ccfg.Metrics == nil {
		ccfg.Metrics = cfg.Metrics
	}
	e.clusterer = cluster.New(ccfg, train)
	if err := e.clusterer.SelectCtx(ctx); err != nil {
		return nil, fmt.Errorf("core: clustering rule search: %w", err)
	}

	// Group training sessions by their assigned cluster ID. Sessions whose
	// cell fell back to the global rule are served by the global model.
	byCluster := map[string][]*trace.Session{}
	for _, s := range train.Sessions {
		rule, id := e.clusterer.ClusterFor(s)
		if rule.IsGlobal() {
			continue
		}
		byCluster[id] = append(byCluster[id], s)
	}
	// Deterministic iteration order; clusters too small for a dedicated
	// model fall back to the global model at prediction time.
	ids := make([]string, 0, len(byCluster))
	for id := range byCluster {
		if len(byCluster[id]) >= cfg.MinClusterSessions {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	// Fan the per-cluster work across the pool. Each cluster trains from
	// its own seeded RNG and appends its results/warnings into its own
	// slot, so the assembled engine is independent of worker interleaving.
	hcfgBase := cfg.HMM
	if hcfgBase.Parallelism == 0 {
		hcfgBase.Parallelism = cfg.Parallelism
	}
	if hcfgBase.Metrics == nil {
		hcfgBase.Metrics = cfg.Metrics
	}
	fitSeconds := cfg.Metrics.Histogram("cs2p_train_cluster_fit_seconds",
		"Wall time to fit one cluster HMM (state selection included).",
		obs.LatencyBuckets, nil)
	results, err := parallel.Map(ctx, cfg.Parallelism, ids, func(ctx context.Context, _ int, id string) (clusterModel, error) {
		fitStart := time.Now()
		defer func() { fitSeconds.Observe(time.Since(fitStart).Seconds()) }()
		members := byCluster[id]
		seqs := sequences(members, cfg.MaxClusterSessions)
		hcfg := hcfgBase
		var cm clusterModel
		if cfg.SelectStates {
			n, _, serr := hmm.SelectStateCountCtx(ctx, seqs, cfg.StateCandidates, cfg.CVFolds, hcfg)
			switch {
			case serr != nil && ctx.Err() != nil:
				return cm, ctx.Err()
			case serr != nil:
				// Selection failure is survivable — fall back to the
				// configured state count — but never silent.
				cm.warns = append(cm.warns, fmt.Sprintf("cluster %s: state selection failed (%v); using %d states", id, serr, hcfg.NStates))
			default:
				hcfg.NStates = n
			}
		}
		m, terr := hmm.Train(seqs, hcfg)
		if terr != nil {
			cm.warns = append(cm.warns, fmt.Sprintf("cluster %s: training failed (%v); using global fallback", id, terr))
			return cm, nil // degenerate cluster; global fallback covers it
		}
		cm.model = m
		cm.median = staticMedian(members)
		return cm, nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: training cluster models: %w", err)
	}
	for i, id := range ids {
		cm := results[i]
		for _, w := range cm.warns {
			cfg.logf("core: %s", w)
			e.warnings = append(e.warnings, w)
		}
		if cm.model == nil {
			cfg.Metrics.Counter("cs2p_train_clusters_total",
				"Clusters trained, by outcome.", obs.Labels{"result": "fallback"}).Inc()
			continue
		}
		cfg.Metrics.Counter("cs2p_train_clusters_total",
			"Clusters trained, by outcome.", obs.Labels{"result": "ok"}).Inc()
		e.models[id] = cm.model
		e.medians[id] = cm.median
	}

	// Global fallback model over a stride subsample of everything.
	gseqs := sequences(train.Sessions, cfg.GlobalSessions)
	g, err := hmm.Train(gseqs, hcfgBase)
	if err != nil {
		return nil, fmt.Errorf("core: training global model: %w", err)
	}
	e.global = g
	e.globalMed = staticMedian(train.Sessions)
	cfg.Metrics.Histogram("cs2p_train_seconds",
		"End-to-end offline training time (clustering + all HMM fits).",
		obs.LatencyBuckets, nil).Observe(time.Since(trainStart).Seconds())
	return e, nil
}

// Warnings returns the non-fatal diagnostics collected while training
// (clusters served by the global fallback, failed state selections), in
// deterministic cluster-ID order.
func (e *Engine) Warnings() []string { return e.warnings }

func sequences(sessions []*trace.Session, cap int) [][]float64 {
	seqs := make([][]float64, 0, len(sessions))
	for _, s := range sessions {
		seqs = append(seqs, s.Throughput)
	}
	if cap > 0 && len(seqs) > cap {
		stride := float64(len(seqs)) / float64(cap)
		sub := make([][]float64, 0, cap)
		for i := 0; i < cap; i++ {
			sub = append(sub, seqs[int(float64(i)*stride)])
		}
		seqs = sub
	}
	return seqs
}

// staticMedian computes a cluster's initial-throughput median through the
// same cluster.RunningMedian the online learner updates incrementally, so the
// offline and online medians share one definition (RunningMedian.Value is
// bit-identical to mathx.Median).
func staticMedian(sessions []*trace.Session) float64 {
	var rm cluster.RunningMedian
	for _, s := range sessions {
		if len(s.Throughput) > 0 {
			rm.Add(s.InitialThroughput())
		}
	}
	return rm.Value()
}

// GlobalClusterID is the cluster ID reported for sessions served by the
// global fallback model rather than a dedicated cluster HMM. The telemetry
// pipeline keys its cluster-hit-rate metric on it.
const GlobalClusterID = "global"

// Name implements predict.Factory and predict.Initial.
func (e *Engine) Name() string { return "CS2P" }

// Clusters returns the number of clusters with a dedicated HMM.
func (e *Engine) Clusters() int { return len(e.models) }

// GlobalModel returns the fallback HMM.
func (e *Engine) GlobalModel() *hmm.Model { return e.global }

// ModelFor returns the HMM and cluster ID a session maps to (the global
// model when the session's cluster has none), for diagnostics and Figure 8.
func (e *Engine) ModelFor(s *trace.Session) (*hmm.Model, string) {
	if e.src != nil {
		return e.src.modelFor(e, s)
	}
	rule, id := e.clusterer.ClusterFor(s)
	if !rule.IsGlobal() {
		if m, ok := e.models[id]; ok {
			return m, id
		}
	}
	return e.global, GlobalClusterID
}

// Clusterer exposes the trained clustering stage (nil on engines booted from
// a deployed artifact, which carry the routing table instead).
func (e *Engine) Clusterer() *cluster.Clusterer { return e.clusterer }

// PredictInitial implements predict.Initial: the median initial throughput
// of Agg(M*, s) (Eq. 6), with fallbacks to the cluster's static median and
// finally the global median when the windowed aggregation is too small.
func (e *Engine) PredictInitial(s *trace.Session) float64 {
	if e.src != nil {
		return e.src.predictInitial(e, s)
	}
	rule, id := e.clusterer.ClusterFor(s)
	agg := e.clusterer.Aggregate(rule, s)
	if len(agg) >= e.cfg.MinClusterSessions {
		if med := cluster.MedianInitial(agg); !math.IsNaN(med) {
			return med
		}
	}
	if med, ok := e.medians[id]; ok && !math.IsNaN(med) {
		return med
	}
	return e.globalMed
}

// SessionPredictor runs Algorithm 1 for one video session: the initial epoch
// is predicted by the cluster median, midstream epochs by the cluster HMM
// filter. Not safe for concurrent use.
type SessionPredictor struct {
	filter    *hmm.Filter
	initial   float64
	clusterID string
}

// NewSession creates the per-session predictor (stage 2 of Figure 1).
func (e *Engine) NewSession(s *trace.Session) predict.Midstream {
	return e.NewSessionPredictor(s)
}

// NewSessionPredictor is NewSession with the concrete type, exposing the
// cluster ID and posterior for diagnostics.
func (e *Engine) NewSessionPredictor(s *trace.Session) *SessionPredictor {
	m, id := e.ModelFor(s)
	return &SessionPredictor{
		filter:    hmm.NewFilter(m),
		initial:   e.PredictInitial(s),
		clusterID: id,
	}
}

// ClusterID identifies the model this session uses.
func (p *SessionPredictor) ClusterID() string { return p.clusterID }

// InitialPrediction returns the cluster-median initial throughput estimate.
func (p *SessionPredictor) InitialPrediction() float64 { return p.initial }

// Filter exposes the underlying HMM filter.
func (p *SessionPredictor) Filter() *hmm.Filter { return p.filter }

// Predict implements Algorithm 1 lines 3-8: the cluster median before any
// observation, the HMM one-step MLE afterwards.
func (p *SessionPredictor) Predict() float64 {
	if !p.filter.Started() {
		return p.initial
	}
	return p.filter.Predict()
}

// PredictAhead estimates k epochs ahead; before any observation the cluster
// median is the best available estimate at every horizon.
func (p *SessionPredictor) PredictAhead(k int) float64 {
	if !p.filter.Started() {
		return p.initial
	}
	return p.filter.PredictAhead(k)
}

// Observe implements Algorithm 1 lines 11-12.
func (p *SessionPredictor) Observe(w float64) { p.filter.Observe(w) }

// PredictQuantileAhead returns the q-th quantile of the k-step-ahead
// predictive throughput distribution (an extension beyond the paper's point
// prediction: the HMM posterior is a full distribution, so a stall-averse
// controller can plan against a conservative quantile instead of the
// most-likely state's mean). Before any observation, the cluster median
// stands in at every quantile.
func (p *SessionPredictor) PredictQuantileAhead(k int, q float64) float64 {
	if !p.filter.Started() {
		return p.initial
	}
	return p.filter.PredictQuantile(k, q)
}

// ConservativeSession wraps a session predictor so that PredictAhead
// returns the q-th predictive quantile — plugging a risk-aware CS2P into
// controllers that consume point predictions (ablation A5).
type ConservativeSession struct {
	P *SessionPredictor
	Q float64
}

// NewConservativeSession builds the quantile view over a fresh session
// predictor.
func (e *Engine) NewConservativeSession(s *trace.Session, q float64) *ConservativeSession {
	return &ConservativeSession{P: e.NewSessionPredictor(s), Q: q}
}

// Predict implements predict.Midstream.
func (c *ConservativeSession) Predict() float64 { return c.PredictAhead(1) }

// PredictAhead implements predict.Midstream.
func (c *ConservativeSession) PredictAhead(k int) float64 {
	return c.P.PredictQuantileAhead(k, c.Q)
}

// Observe implements predict.Midstream.
func (c *ConservativeSession) Observe(w float64) { c.P.Observe(w) }
