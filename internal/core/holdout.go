package core

import (
	"math"
	"sort"

	"cs2p/internal/mathx"
	"cs2p/internal/trace"
)

// EvaluateHoldout replays every holdout session through the engine exactly as
// a serving request would (Algorithm 1: initial prediction from the cluster
// median, then observe-and-predict per epoch) and summarizes the per-epoch
// absolute percentage errors. Both the trainer (recording metrics into the
// manifest) and the promotion gate (scoring candidate vs incumbent on the
// same slice) use it, so the two always measure the same quantity.
func EvaluateHoldout(e *Engine, holdout *trace.Dataset) HoldoutMetrics {
	var m HoldoutMetrics
	if e == nil || holdout == nil {
		return m
	}
	var apes []float64
	for _, s := range holdout.Sessions {
		if len(s.Throughput) == 0 {
			continue
		}
		m.Sessions++
		p := e.NewSessionPredictor(s)
		for _, w := range s.Throughput {
			pred := p.Predict()
			if w > 0 && !math.IsNaN(pred) && !math.IsInf(pred, 0) {
				apes = append(apes, math.Abs(pred-w)/w)
			}
			p.Observe(w)
		}
		m.Epochs += len(s.Throughput)
	}
	if len(apes) == 0 {
		return m
	}
	sort.Float64s(apes)
	m.MedianAPE = quantileOrZero(apes, 0.5)
	m.P90APE = quantileOrZero(apes, 0.9)
	return m
}

// quantileOrZero is mathx.QuantileSorted with NaN/Inf clamped to 0 so the
// metrics stay JSON- and manifest-safe.
func quantileOrZero(sorted []float64, q float64) float64 {
	v := mathx.QuantileSorted(sorted, q)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
