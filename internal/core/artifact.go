package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// ArtifactSchemaVersion is the manifest schema this build reads and writes.
// Loaders reject any other value with ErrUnknownSchema: silently reinterpreting
// a future schema is how half-compatible models get installed.
const ArtifactSchemaVersion = 1

// Typed artifact-load failures. Callers (the registry, the serving engine)
// branch on these to distinguish corruption from incompatibility; none of
// them is ever a panic.
var (
	// ErrChecksumMismatch: the model payload does not hash to the
	// manifest's SHA-256 — the artifact was corrupted or tampered with.
	ErrChecksumMismatch = errors.New("core: artifact checksum mismatch")
	// ErrUnknownSchema: the manifest's schema version is not one this
	// build understands.
	ErrUnknownSchema = errors.New("core: unknown artifact schema version")
	// ErrInvalidManifest: the manifest is structurally unsound (missing
	// checksum, zero version, non-finite metrics).
	ErrInvalidManifest = errors.New("core: invalid artifact manifest")
)

// HoldoutMetrics summarizes a model's prediction quality on a held-out slice
// of the training trace — the evidence a promotion gate weighs before letting
// the model serve (§6 evaluates exactly these absolute-percentage-error
// quantiles).
type HoldoutMetrics struct {
	// Sessions and Epochs are the holdout slice's size.
	Sessions int `json:"sessions"`
	Epochs   int `json:"epochs"`
	// MedianAPE and P90APE are quantiles of per-epoch absolute percentage
	// error over the holdout replay (1.0 = 100%).
	MedianAPE float64 `json:"median_ape"`
	P90APE    float64 `json:"p90_ape"`
}

// Valid reports whether the metrics are usable for gating (finite,
// non-negative, computed over a non-empty slice).
func (h HoldoutMetrics) Valid() bool {
	return h.Epochs > 0 &&
		!math.IsNaN(h.MedianAPE) && !math.IsInf(h.MedianAPE, 0) && h.MedianAPE >= 0 &&
		!math.IsNaN(h.P90APE) && !math.IsInf(h.P90APE, 0) && h.P90APE >= 0
}

// TrainingMeta is what the trainer knows about an artifact at publish time.
// TrainedAtUnix is injected by the caller (the registry never reads the
// clock) so publishes are reproducible and testable.
type TrainingMeta struct {
	TrainedAtUnix int64          `json:"trained_at_unix"`
	TraceSessions int            `json:"trace_sessions"`
	TraceEpochs   int            `json:"trace_epochs"`
	Clusters      int            `json:"clusters"`
	Holdout       HoldoutMetrics `json:"holdout"`
}

// Manifest is the self-describing envelope published next to every model
// payload: enough to verify integrity (SHA256 over the exact model bytes),
// order versions (Version strictly increases per registry), and judge quality
// (Holdout) without parsing the payload.
type Manifest struct {
	SchemaVersion int            `json:"schema_version"`
	Version       uint64         `json:"version"`
	SHA256        string         `json:"sha256"`
	TrainedAtUnix int64          `json:"trained_at_unix"`
	TraceSessions int            `json:"trace_sessions"`
	TraceEpochs   int            `json:"trace_epochs"`
	Clusters      int            `json:"clusters"`
	Holdout       HoldoutMetrics `json:"holdout"`
}

// NewManifest builds the manifest for a model payload. modelJSON must be the
// exact bytes that will be stored (the checksum binds to them).
func NewManifest(version uint64, modelJSON []byte, meta TrainingMeta) Manifest {
	sum := sha256.Sum256(modelJSON)
	return Manifest{
		SchemaVersion: ArtifactSchemaVersion,
		Version:       version,
		SHA256:        hex.EncodeToString(sum[:]),
		TrainedAtUnix: meta.TrainedAtUnix,
		TraceSessions: meta.TraceSessions,
		TraceEpochs:   meta.TraceEpochs,
		Clusters:      meta.Clusters,
		Holdout:       meta.Holdout,
	}
}

// Validate checks the manifest's structural invariants.
func (m Manifest) Validate() error {
	if m.SchemaVersion != ArtifactSchemaVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrUnknownSchema, m.SchemaVersion, ArtifactSchemaVersion)
	}
	if m.Version == 0 {
		return fmt.Errorf("%w: version must be >= 1", ErrInvalidManifest)
	}
	if len(m.SHA256) != hex.EncodedLen(sha256.Size) {
		return fmt.Errorf("%w: malformed sha256 %q", ErrInvalidManifest, m.SHA256)
	}
	if _, err := hex.DecodeString(m.SHA256); err != nil {
		return fmt.Errorf("%w: malformed sha256 %q", ErrInvalidManifest, m.SHA256)
	}
	for _, v := range []float64{m.Holdout.MedianAPE, m.Holdout.P90APE} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: non-finite or negative holdout metric", ErrInvalidManifest)
		}
	}
	return nil
}

// Artifact is a fully verified (manifest, model) pair — the only way a
// deployed model enters the serving path.
type Artifact struct {
	Manifest Manifest
	Store    *ModelStore
}

// LoadArtifact decodes and cross-checks a manifest and model payload:
// manifest valid, payload hashing to the manifest's checksum, payload a fully
// valid model store. Every failure is a typed error and leaves nothing
// installed — corruption anywhere rejects the artifact whole.
func LoadArtifact(manifestJSON, modelJSON []byte) (*Artifact, error) {
	dec := json.NewDecoder(bytes.NewReader(manifestJSON))
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrInvalidManifest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after manifest", ErrInvalidManifest)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sum := sha256.Sum256(modelJSON)
	if hex.EncodeToString(sum[:]) != m.SHA256 {
		return nil, fmt.Errorf("%w: model payload hashes to %s, manifest says %s",
			ErrChecksumMismatch, hex.EncodeToString(sum[:]), m.SHA256)
	}
	ms, err := LoadModelStore(bytes.NewReader(modelJSON))
	if err != nil {
		return nil, err
	}
	return &Artifact{Manifest: m, Store: ms}, nil
}
