package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"
)

// exportedModelJSON serializes the shared test engine's store once.
func exportedModelJSON(t *testing.T) []byte {
	t.Helper()
	train, _, eng := env(t)
	var buf bytes.Buffer
	if err := eng.Export(train).Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestManifestRoundTrip(t *testing.T) {
	modelJSON := exportedModelJSON(t)
	meta := TrainingMeta{
		TrainedAtUnix: 1700000000,
		TraceSessions: 600,
		TraceEpochs:   12000,
		Clusters:      7,
		Holdout:       HoldoutMetrics{Sessions: 100, Epochs: 2000, MedianAPE: 0.11, P90APE: 0.42},
	}
	m := NewManifest(3, modelJSON, meta)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	mb, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	art, err := LoadArtifact(mb, modelJSON)
	if err != nil {
		t.Fatal(err)
	}
	if art.Manifest != m {
		t.Errorf("manifest did not round-trip: got %+v want %+v", art.Manifest, m)
	}
	if art.Store == nil || art.Store.Global.Model == nil {
		t.Fatal("artifact store missing models")
	}
	if !art.Manifest.Holdout.Valid() {
		t.Error("round-tripped holdout metrics should be valid")
	}
}

func TestLoadArtifactTypedErrors(t *testing.T) {
	modelJSON := exportedModelJSON(t)
	good := NewManifest(1, modelJSON, TrainingMeta{TrainedAtUnix: 1})
	marshal := func(m Manifest) []byte {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	t.Run("checksum mismatch", func(t *testing.T) {
		tampered := append([]byte(nil), modelJSON...)
		// Flip a byte inside the payload; the manifest checksum no longer binds.
		tampered[len(tampered)/2] ^= 0x20
		_, err := LoadArtifact(marshal(good), tampered)
		if !errors.Is(err, ErrChecksumMismatch) {
			t.Errorf("want ErrChecksumMismatch, got %v", err)
		}
	})
	t.Run("unknown schema", func(t *testing.T) {
		m := good
		m.SchemaVersion = ArtifactSchemaVersion + 1
		_, err := LoadArtifact(marshal(m), modelJSON)
		if !errors.Is(err, ErrUnknownSchema) {
			t.Errorf("want ErrUnknownSchema, got %v", err)
		}
	})
	t.Run("zero version", func(t *testing.T) {
		m := good
		m.Version = 0
		_, err := LoadArtifact(marshal(m), modelJSON)
		if !errors.Is(err, ErrInvalidManifest) {
			t.Errorf("want ErrInvalidManifest, got %v", err)
		}
	})
	t.Run("malformed checksum", func(t *testing.T) {
		m := good
		m.SHA256 = "zz"
		_, err := LoadArtifact(marshal(m), modelJSON)
		if !errors.Is(err, ErrInvalidManifest) {
			t.Errorf("want ErrInvalidManifest, got %v", err)
		}
	})
	t.Run("manifest trailing data", func(t *testing.T) {
		_, err := LoadArtifact(append(marshal(good), "{}"...), modelJSON)
		if !errors.Is(err, ErrInvalidManifest) {
			t.Errorf("want ErrInvalidManifest, got %v", err)
		}
	})
	t.Run("manifest not json", func(t *testing.T) {
		_, err := LoadArtifact([]byte("not json"), modelJSON)
		if !errors.Is(err, ErrInvalidManifest) {
			t.Errorf("want ErrInvalidManifest, got %v", err)
		}
	})
	t.Run("negative holdout metric", func(t *testing.T) {
		m := good
		m.Holdout.MedianAPE = -1
		_, err := LoadArtifact(marshal(m), modelJSON)
		if !errors.Is(err, ErrInvalidManifest) {
			t.Errorf("want ErrInvalidManifest, got %v", err)
		}
	})
}

// TestArtifactBootParity is the PR's core guarantee: an engine booted from a
// saved artifact predicts bit-identically to the live engine that exported
// it — routing, initial prediction (the windowed Eq. 6 aggregation), and the
// full midstream replay.
func TestArtifactBootParity(t *testing.T) {
	_, test, live := env(t)
	ms, err := LoadModelStore(bytes.NewReader(exportedModelJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	booted, err := NewEngineFromStore(ms)
	if err != nil {
		t.Fatal(err)
	}
	if booted.Clusterer() != nil {
		t.Error("artifact-booted engine should have no live clusterer")
	}
	for _, s := range test.Sessions {
		_, liveID := live.ModelFor(s)
		_, bootID := booted.ModelFor(s)
		if liveID != bootID {
			t.Fatalf("session %s: routed to %q live vs %q booted", s.ID, liveID, bootID)
		}
		li, bi := live.PredictInitial(s), booted.PredictInitial(s)
		if li != bi && !(math.IsNaN(li) && math.IsNaN(bi)) {
			t.Fatalf("session %s: initial prediction %v live vs %v booted", s.ID, li, bi)
		}
		lp, bp := live.NewSessionPredictor(s), booted.NewSessionPredictor(s)
		for i, w := range s.Throughput {
			l, b := lp.Predict(), bp.Predict()
			if l != b && !(math.IsNaN(l) && math.IsNaN(b)) {
				t.Fatalf("session %s epoch %d: prediction %v live vs %v booted", s.ID, i, l, b)
			}
			lp.Observe(w)
			bp.Observe(w)
		}
	}
}

// TestExportStoreBackedEngine: re-exporting an artifact-booted engine returns
// its backing store, so a chain of export/boot cycles is a fixed point.
func TestExportStoreBackedEngine(t *testing.T) {
	ms, err := LoadModelStore(bytes.NewReader(exportedModelJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	booted, err := NewEngineFromStore(ms)
	if err != nil {
		t.Fatal(err)
	}
	if got := booted.Export(nil); got != ms {
		t.Error("store-backed engine should export its backing store")
	}
}

// TestLegacyStoreWithoutInitialIndex: stores exported with a nil dataset (or
// by older builds) carry no InitialIndex; the booted engine serves static
// medians and routes via the Routes table, and still never panics.
func TestLegacyStoreWithoutInitialIndex(t *testing.T) {
	_, test, eng := env(t)
	legacy := eng.Export(nil)
	if legacy.Initial != nil {
		t.Fatal("Export(nil) should omit the initial index")
	}
	booted, err := NewEngineFromStore(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range test.Sessions[:10] {
		if p := booted.PredictInitial(s); math.IsNaN(p) {
			t.Errorf("session %s: legacy store should predict via static medians", s.ID)
		}
		sm, _ := legacy.Lookup(s.Features)
		if got := booted.PredictInitial(s); got != sm.InitialMedian && !math.IsNaN(sm.InitialMedian) {
			t.Errorf("session %s: legacy initial %v, want static median %v", s.ID, got, sm.InitialMedian)
		}
	}
}

func TestLoadModelStoreRejectsTrailingGarbage(t *testing.T) {
	modelJSON := exportedModelJSON(t)
	if _, err := LoadModelStore(bytes.NewReader(append(modelJSON, "garbage"...))); err == nil {
		t.Error("trailing garbage after the JSON document should fail")
	}
	if _, err := LoadModelStore(bytes.NewReader(append(modelJSON, '{'))); err == nil {
		t.Error("trailing JSON after the document should fail")
	}
}

func TestEvaluateHoldout(t *testing.T) {
	_, test, eng := env(t)
	m := EvaluateHoldout(eng, test)
	if m.Sessions == 0 || m.Epochs == 0 {
		t.Fatalf("holdout replay saw no data: %+v", m)
	}
	if !m.Valid() {
		t.Fatalf("holdout metrics should be valid: %+v", m)
	}
	if m.P90APE < m.MedianAPE {
		t.Errorf("P90 APE %v below median APE %v", m.P90APE, m.MedianAPE)
	}
	if z := EvaluateHoldout(nil, test); z.Valid() {
		t.Error("nil engine should yield invalid metrics")
	}
	if z := EvaluateHoldout(eng, nil); z.Valid() {
		t.Error("nil holdout should yield invalid metrics")
	}
}
