package core

import (
	"fmt"
	"math"
	"sort"

	"cs2p/internal/cluster"
	"cs2p/internal/hmm"
	"cs2p/internal/trace"
)

// OnlineConfig controls the incremental learner that keeps a trained engine's
// models tracking fresh traffic.
type OnlineConfig struct {
	// HMM configures the per-cluster incremental EM trainers.
	HMM hmm.OnlineConfig
	// MinClusterSessions is the minimum fresh sessions a cluster must
	// contribute to one Absorb batch before its HMM trainer is updated;
	// smaller slices would burn a full decay step on negligible evidence.
	// Medians always update. Defaults to 5.
	MinClusterSessions int
	// MinMedianSamples is the minimum running-median sample count before a
	// cluster's candidate initial median switches from the incumbent's
	// static value to the online one. Defaults to 10.
	MinMedianSamples int
}

// DefaultOnlineConfig returns the settings the engine's online-learning loop
// uses.
func DefaultOnlineConfig() OnlineConfig {
	return OnlineConfig{
		HMM:                hmm.DefaultOnlineConfig(),
		MinClusterSessions: 5,
		MinMedianSamples:   10,
	}
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.HMM == (hmm.OnlineConfig{}) {
		c.HMM = hmm.DefaultOnlineConfig()
	}
	if c.MinClusterSessions <= 0 {
		c.MinClusterSessions = 5
	}
	if c.MinMedianSamples <= 0 {
		c.MinMedianSamples = 10
	}
	return c
}

// OnlineLearner incrementally updates a trained engine's per-cluster HMMs
// (decayed minibatch EM, warm-started from the incumbent models) and initial
// medians (exact running medians) from fresh serving traffic, and materializes
// candidate engines for the promotion gate. The base engine is never mutated:
// trainers clone their warm-start models and Candidate builds a fresh Engine,
// so a rejected candidate leaves no trace. Not safe for concurrent use; the
// serving layer serializes Absorb/Candidate behind its retrain lock.
//
// Cluster structure itself is not revised online — fresh sessions are routed
// by the incumbent's clustering and unseen cells feed only the global model.
// Discovering new clusters remains an offline (full rule-search) concern.
type OnlineLearner struct {
	cfg  OnlineConfig
	base *Engine

	trainers map[string]*hmm.OnlineTrainer // cluster ID -> incremental trainer
	medians  map[string]*cluster.RunningMedian
	global   *hmm.OnlineTrainer
	globMed  cluster.RunningMedian
	absorbed int // fresh sessions absorbed so far
}

// NewOnlineLearner builds a learner over a trained (or artifact-booted) base
// engine.
func NewOnlineLearner(base *Engine, cfg OnlineConfig) (*OnlineLearner, error) {
	if base == nil || base.global == nil {
		return nil, fmt.Errorf("core: online learner needs a trained base engine")
	}
	cfg = cfg.withDefaults()
	g, err := hmm.NewOnlineTrainer(base.global, cfg.HMM)
	if err != nil {
		return nil, fmt.Errorf("core: warm-starting global trainer: %w", err)
	}
	return &OnlineLearner{
		cfg:      cfg,
		base:     base,
		trainers: make(map[string]*hmm.OnlineTrainer),
		medians:  make(map[string]*cluster.RunningMedian),
		global:   g,
	}, nil
}

// Absorbed reports how many fresh sessions the learner has consumed.
func (l *OnlineLearner) Absorbed() int { return l.absorbed }

// Absorb folds one batch of fresh sessions into the running state: every
// session updates the global trainer and global median; sessions routed to a
// dedicated cluster additionally update that cluster's trainer (lazily
// warm-started from the incumbent model) and running median. Sessions without
// throughput observations are skipped.
func (l *OnlineLearner) Absorb(fresh []*trace.Session) error {
	byCluster := map[string][]*trace.Session{}
	var all [][]float64
	usable := 0
	for _, s := range fresh {
		if s == nil || len(s.Throughput) == 0 {
			continue
		}
		usable++
		all = append(all, s.Throughput)
		l.globMed.Add(s.InitialThroughput())
		_, id := l.base.ModelFor(s)
		if id == GlobalClusterID {
			continue
		}
		byCluster[id] = append(byCluster[id], s)
	}
	if usable == 0 {
		return nil
	}
	// Deterministic cluster order so metric and error ordering is stable.
	ids := make([]string, 0, len(byCluster))
	for id := range byCluster {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		members := byCluster[id]
		rm, ok := l.medians[id]
		if !ok {
			rm = &cluster.RunningMedian{}
			l.medians[id] = rm
		}
		for _, s := range members {
			rm.Add(s.InitialThroughput())
		}
		if len(members) < l.cfg.MinClusterSessions {
			continue
		}
		tr, ok := l.trainers[id]
		if !ok {
			warm := l.base.models[id]
			if warm == nil {
				continue // routed to a cluster the incumbent has no model for
			}
			var err error
			tr, err = hmm.NewOnlineTrainer(warm, l.cfg.HMM)
			if err != nil {
				return fmt.Errorf("core: warm-starting cluster %q trainer: %w", id, err)
			}
			l.trainers[id] = tr
		}
		seqs := make([][]float64, 0, len(members))
		for _, s := range members {
			seqs = append(seqs, s.Throughput)
		}
		if err := tr.Update(seqs); err != nil {
			return fmt.Errorf("core: cluster %q incremental update: %w", id, err)
		}
	}
	if err := l.global.Update(all); err != nil {
		return fmt.Errorf("core: global incremental update: %w", err)
	}
	l.absorbed += usable
	return nil
}

// candidateModels assembles the updated per-cluster artifacts: incumbent
// models overridden by every trainer that absorbed at least one batch, and
// incumbent medians overridden once a cluster's running median has enough
// samples.
func (l *OnlineLearner) candidateModels() (models map[string]*hmm.Model, medians map[string]float64, global *hmm.Model, globalMed float64) {
	models = make(map[string]*hmm.Model, len(l.base.models))
	medians = make(map[string]float64, len(l.base.medians))
	for id, m := range l.base.models {
		models[id] = m
	}
	for id, med := range l.base.medians {
		medians[id] = med
	}
	for id, tr := range l.trainers {
		if tr.Updates() > 0 {
			models[id] = tr.Model().Clone()
		}
	}
	for id, rm := range l.medians {
		if rm.Count() >= l.cfg.MinMedianSamples {
			if v := rm.Value(); !math.IsNaN(v) {
				medians[id] = v
			}
		}
	}
	global = l.base.global
	if l.global.Updates() > 0 {
		global = l.global.Model().Clone()
	}
	globalMed = l.base.globalMed
	if l.globMed.Count() >= l.cfg.MinMedianSamples {
		if v := l.globMed.Value(); !math.IsNaN(v) {
			globalMed = v
		}
	}
	return models, medians, global, globalMed
}

// Candidate materializes the learner's current state as a deployable
// candidate: a serving engine (for the promotion gate's holdout evaluation)
// plus its exported model store (for registry publication). fresh is the
// intake batch the candidate was trained on; for a clusterer-backed base it
// also seeds the exported store's routing/initial index, so the published
// artifact reflects the traffic that triggered the retrain.
//
// For an artifact-booted base the incumbent store's routing table and initial
// index are carried over unchanged (only models and medians are refreshed) —
// the windowed Eq. 6 aggregation ages until the next offline export.
func (l *OnlineLearner) Candidate(fresh *trace.Dataset) (*Engine, *ModelStore, error) {
	models, medians, global, globalMed := l.candidateModels()

	if l.base.src != nil {
		baseMS := l.base.src.ms
		ms := &ModelStore{
			FullFeatures: baseMS.FullFeatures,
			Routes:       baseMS.Routes,
			Models:       make(map[string]StoredModel, len(models)),
			Global:       StoredModel{Model: global, InitialMedian: globalMed},
			Initial:      baseMS.Initial,
		}
		for id, m := range models {
			ms.Models[id] = StoredModel{Model: m, InitialMedian: medians[id]}
		}
		eng, err := NewEngineFromStore(ms)
		if err != nil {
			return nil, nil, fmt.Errorf("core: materializing online candidate: %w", err)
		}
		return eng, ms, nil
	}

	eng := &Engine{
		cfg:       l.base.cfg,
		clusterer: l.base.clusterer,
		models:    models,
		medians:   medians,
		global:    global,
		globalMed: globalMed,
	}
	return eng, eng.Export(fresh), nil
}
