package core

import (
	"math"
	"testing"
)

func TestConservativeSessionQuantileOrdering(t *testing.T) {
	_, test, eng := env(t)
	s := test.Sessions[0]
	low := eng.NewConservativeSession(s, 0.1)
	mid := eng.NewConservativeSession(s, 0.5)
	// Before any observation both return the cluster median.
	if low.Predict() != mid.Predict() {
		t.Error("pre-observation conservative predictions should equal the cluster median")
	}
	for _, w := range s.Throughput[:5] {
		low.Observe(w)
		mid.Observe(w)
	}
	l, m := low.Predict(), mid.Predict()
	if math.IsNaN(l) || math.IsNaN(m) {
		t.Fatalf("NaN predictions: %v %v", l, m)
	}
	if l > m {
		t.Errorf("10th percentile (%v) above median (%v)", l, m)
	}
	if low.PredictAhead(5) > mid.PredictAhead(5) {
		t.Error("quantile ordering must hold at longer horizons")
	}
}

func TestPredictQuantileAheadBeforeObservation(t *testing.T) {
	_, test, eng := env(t)
	s := test.Sessions[1]
	p := eng.NewSessionPredictor(s)
	if got := p.PredictQuantileAhead(1, 0.25); got != p.InitialPrediction() {
		t.Errorf("pre-observation quantile = %v, want cluster median %v", got, p.InitialPrediction())
	}
	p.Observe(s.Throughput[0])
	q25 := p.PredictQuantileAhead(1, 0.25)
	q75 := p.PredictQuantileAhead(1, 0.75)
	if !(q25 <= q75) {
		t.Errorf("quantiles out of order: %v > %v", q25, q75)
	}
}

func TestConservativeSessionConsistentWithPointAtExtremes(t *testing.T) {
	_, test, eng := env(t)
	s := test.Sessions[2]
	c := eng.NewConservativeSession(s, 0.5)
	point := eng.NewSessionPredictor(s)
	for _, w := range s.Throughput[:8] {
		c.Observe(w)
		point.Observe(w)
	}
	// The predictive median and the MLE-state mean should be in the same
	// ballpark (both summarize the same posterior).
	med := c.Predict()
	mle := point.Predict()
	if med <= 0 || mle <= 0 {
		t.Fatalf("degenerate predictions: %v %v", med, mle)
	}
	ratio := med / mle
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("median (%v) and MLE (%v) wildly inconsistent", med, mle)
	}
}
