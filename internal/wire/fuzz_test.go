package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// typedDecodeErr reports whether err is one of the package's named decode
// errors — the fuzz oracle for "malformed input fails loudly and typed-ly".
func typedDecodeErr(err error) bool {
	for _, want := range []error{
		ErrBadMagic, ErrVersion, ErrUnknownType, ErrTruncated,
		ErrOversize, ErrTrailingData, ErrBadValue,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// FuzzWireDecode throws raw bytes at the full decode surface. Oracles:
// no input may panic; every rejection must be a typed error; and any frame
// that decodes must survive a canonical re-encode/re-decode round trip
// bit-identically (so accepted frames have exactly one meaning).
func FuzzWireDecode(f *testing.F) {
	// Canonical frames of every message type.
	f.Add(AppendOp(nil, Op{SessionID: []byte("seed"), ObservedMbps: 2.5, Horizon: 1, HasObserve: true}))
	f.Add(AppendOp(nil, Op{SessionID: []byte("q"), Horizon: 5}))
	f.Add(AppendPrediction(nil, 3.75))
	f.Add(AppendBatch(nil, []Op{
		{SessionID: []byte("a"), ObservedMbps: 1, Horizon: 1, HasObserve: true},
		{SessionID: []byte("b"), Horizon: 2},
	}))
	f.Add(AppendBatchResult(nil, 7, []OpResult{{PredictionMbps: 2}, {Code: OpUnknownSession}}))
	f.Add(AppendError(nil, 400, "bad"))
	// Hostile shapes: truncation, trailing data, lying lengths, oversize.
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1})
	f.Add([]byte{magic0, magic1, Version, byte(MsgOp), 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(append(AppendPrediction(nil, 1), 0x00))
	f.Add([]byte(`{"session_id":"json-at-a-binary-route"}`))
	long := AppendOp(nil, Op{SessionID: bytes.Repeat([]byte("x"), 300), Horizon: 1})
	f.Add(long)

	lim := DefaultLimits()
	f.Fuzz(func(t *testing.T, b []byte) {
		frame, err := DecodeFrame(b, lim)
		if err != nil {
			if !typedDecodeErr(err) {
				t.Fatalf("untyped frame error %v for %x", err, b)
			}
			return
		}
		switch frame.Type {
		case MsgOp:
			op, err := DecodeOp(frame.Payload, lim)
			if err != nil {
				if !typedDecodeErr(err) {
					t.Fatalf("untyped op error %v", err)
				}
				return
			}
			// NaN payloads round-trip semantically but their exact bit
			// pattern is not guaranteed across float moves; skip byte
			// canonicality for them (validation rejects NaN upstream).
			if !math.IsNaN(op.ObservedMbps) && !bytes.Equal(AppendOp(nil, op), b) {
				t.Fatalf("op re-encode not canonical for %x", b)
			}
		case MsgPrediction:
			v, err := DecodePrediction(frame.Payload)
			if err != nil {
				if !typedDecodeErr(err) {
					t.Fatalf("untyped prediction error %v", err)
				}
				return
			}
			if !math.IsNaN(v) && !bytes.Equal(AppendPrediction(nil, v), b) {
				t.Fatalf("prediction re-encode not canonical for %x", b)
			}
		case MsgBatch:
			ops, err := DecodeBatch(frame.Payload, lim, nil)
			if err != nil {
				if !typedDecodeErr(err) {
					t.Fatalf("untyped batch error %v", err)
				}
				return
			}
			nan := false
			for _, op := range ops {
				nan = nan || math.IsNaN(op.ObservedMbps)
			}
			if !nan && !bytes.Equal(AppendBatch(nil, ops), b) {
				t.Fatalf("batch re-encode not canonical for %x", b)
			}
		case MsgBatchResult:
			res, gen, err := DecodeBatchResult(frame.Payload, lim, nil)
			if err != nil {
				if !typedDecodeErr(err) {
					t.Fatalf("untyped batch-result error %v", err)
				}
				return
			}
			nan := false
			for _, r := range res {
				nan = nan || math.IsNaN(r.PredictionMbps)
			}
			if !nan && !bytes.Equal(AppendBatchResult(nil, gen, res), b) {
				t.Fatalf("batch-result re-encode not canonical for %x", b)
			}
		case MsgError:
			status, msg, err := DecodeError(frame.Payload)
			if err != nil {
				if !typedDecodeErr(err) {
					t.Fatalf("untyped error-frame error %v", err)
				}
				return
			}
			if !bytes.Equal(AppendError(nil, status, string(msg)), b) {
				t.Fatalf("error re-encode not canonical for %x", b)
			}
		}
	})
}
