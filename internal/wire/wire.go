// Package wire is the compact binary protocol carried on the /v2 routes —
// the serve path's answer to JSON encode/decode dominating the predict round
// trip (DESIGN.md §12). Every frame is self-describing and bounds-checked:
//
//	offset  size  field
//	0       2     magic 0xC5 0x2B
//	2       1     schema version (currently 1)
//	3       1     message type
//	4       4     payload length, uint32 little-endian
//	8       n     payload
//
// All numerics are fixed-width little-endian; every variable-length field
// (session ids, error messages, batch op lists) carries an explicit length
// that decoders check against both the configured Limits and the remaining
// payload, so a truncated or hostile frame fails with a typed error instead
// of a panic or an over-read. Encoders are append-style (they grow a
// caller-owned buffer and never allocate when the buffer has capacity) and
// decoders are zero-copy (session ids alias the input buffer), which is what
// lets the HTTP layer serve the steady-state path from pooled scratch.
//
// Evolution rules: the version byte is bumped only for incompatible layout
// changes (decoders reject unknown versions with ErrVersion); new message
// types extend the protocol compatibly (decoders reject unknown types with
// ErrUnknownType, so an old server answers a new client with a clean error
// rather than misparsing); within a version, payload layouts are frozen.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// Version is the schema version this package encodes and accepts.
const Version = 1

// HeaderLen is the fixed frame header size.
const HeaderLen = 8

// The frame magic: two bytes no JSON document can start with, so a client
// that POSTs JSON at a /v2 route is rejected immediately and typed-ly.
const (
	magic0 = 0xC5
	magic1 = 0x2B
)

// ContentType is the HTTP media type the /v2 routes speak.
const ContentType = "application/x-cs2p-wire"

// MsgType identifies a frame's payload layout.
type MsgType uint8

// Message types of schema version 1.
const (
	// MsgOp is a single observe/predict operation (request).
	MsgOp MsgType = 0x01
	// MsgPrediction is a single prediction (response).
	MsgPrediction MsgType = 0x02
	// MsgBatch is a sequence of interleaved observe/predict ops (request).
	MsgBatch MsgType = 0x03
	// MsgBatchResult is the per-op result sequence (response).
	MsgBatchResult MsgType = 0x04
	// MsgError is a typed failure (response): an HTTP-aligned status code
	// plus a short message.
	MsgError MsgType = 0x05
)

// Typed decode errors. Handlers map them to 400s; fuzzing asserts every
// malformed input lands on exactly one of these (never a panic).
var (
	ErrBadMagic     = errors.New("wire: bad magic")
	ErrVersion      = errors.New("wire: unsupported schema version")
	ErrUnknownType  = errors.New("wire: unknown message type")
	ErrTruncated    = errors.New("wire: truncated frame")
	ErrOversize     = errors.New("wire: length exceeds limit")
	ErrTrailingData = errors.New("wire: trailing bytes after payload")
	ErrBadValue     = errors.New("wire: invalid field value")
)

// Limits bounds every variable-length field a decoder will accept. The
// zero value is unusable; start from DefaultLimits.
type Limits struct {
	// MaxFrameBytes caps the total frame size (header + payload).
	MaxFrameBytes int
	// MaxSessionIDLen caps one session id.
	MaxSessionIDLen int
	// MaxBatchOps caps the op count in one batch frame.
	MaxBatchOps int
}

// DefaultLimits mirrors the HTTP layer's hardening defaults.
func DefaultLimits() Limits {
	return Limits{
		MaxFrameBytes:   1 << 20,
		MaxSessionIDLen: 256,
		MaxBatchOps:     1024,
	}
}

// Op is one observe/predict operation. HasObserve distinguishes the
// stateful observe+predict round trip (the per-chunk call) from the
// stateless multi-horizon query. SessionID aliases the decoded frame's
// buffer — it is valid only until the buffer is reused.
type Op struct {
	SessionID    []byte
	ObservedMbps float64
	Horizon      uint16
	HasObserve   bool
}

// opFixedLen is the fixed-width prefix of one encoded op:
// flags(1) + horizon(2) + observed(8) + idlen(2).
const opFixedLen = 1 + 2 + 8 + 2

const flagHasObserve = 0x01

// Result codes for batch ops. 0 is success; nonzero codes name the
// per-op failure without carrying an allocation-heavy error string.
const (
	OpOK             uint8 = 0
	OpUnknownSession uint8 = 1
	OpInvalid        uint8 = 2
)

// OpResult is one batch op's outcome.
type OpResult struct {
	PredictionMbps float64
	Code           uint8
}

// opResultLen is one encoded result: code(1) + prediction(8).
const opResultLen = 1 + 8

// Frame is a decoded header plus its payload slice (aliasing the input).
type Frame struct {
	Type    MsgType
	Payload []byte
}

// appendHeader writes the 8-byte header with a zero length; the caller
// patches the length once the payload is appended.
func appendHeader(dst []byte, t MsgType) []byte {
	return append(dst, magic0, magic1, Version, byte(t), 0, 0, 0, 0)
}

// patchLen stamps the payload length into the header that starts at off.
func patchLen(b []byte, off int) []byte {
	binary.LittleEndian.PutUint32(b[off+4:off+8], uint32(len(b)-off-HeaderLen))
	return b
}

// PeekHeader validates the fixed header fields of a frame whose payload has
// not been read yet and returns the declared payload length. Streaming
// readers (the HTTP handlers) use it to reject bad magic, wrong versions,
// unknown types, and oversize declarations before buffering a single payload
// byte; DecodeFrame performs the same checks plus the exact-length check once
// the payload is in hand.
func PeekHeader(hdr []byte, lim Limits) (MsgType, int, error) {
	if len(hdr) < HeaderLen {
		return 0, 0, ErrTruncated
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, 0, ErrBadMagic
	}
	if hdr[2] != Version {
		return 0, 0, ErrVersion
	}
	t := MsgType(hdr[3])
	switch t {
	case MsgOp, MsgPrediction, MsgBatch, MsgBatchResult, MsgError:
	default:
		return 0, 0, ErrUnknownType
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if lim.MaxFrameBytes > 0 && HeaderLen+n > lim.MaxFrameBytes {
		return 0, 0, ErrOversize
	}
	return t, n, nil
}

// DecodeFrame validates the header and bounds and returns the typed payload
// view. The frame must be exactly one message: trailing bytes are an error
// (the HTTP body is the outer length delimiter, so any excess is garbage).
func DecodeFrame(b []byte, lim Limits) (Frame, error) {
	t, n, err := PeekHeader(b, lim)
	if err != nil {
		return Frame{}, err
	}
	if lim.MaxFrameBytes > 0 && len(b) > lim.MaxFrameBytes {
		return Frame{}, ErrOversize
	}
	if len(b) < HeaderLen+n {
		return Frame{}, ErrTruncated
	}
	if len(b) > HeaderLen+n {
		return Frame{}, ErrTrailingData
	}
	return Frame{Type: t, Payload: b[HeaderLen:]}, nil
}

// AppendOp encodes a single-op request frame (MsgOp).
func AppendOp(dst []byte, op Op) []byte {
	off := len(dst)
	dst = appendHeader(dst, MsgOp)
	dst = appendOpBody(dst, op)
	return patchLen(dst, off)
}

func appendOpBody(dst []byte, op Op) []byte {
	var flags byte
	if op.HasObserve {
		flags |= flagHasObserve
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint16(dst, op.Horizon)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(op.ObservedMbps))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(op.SessionID)))
	return append(dst, op.SessionID...)
}

// decodeOpBody reads one op starting at b[i], returning the next offset.
func decodeOpBody(b []byte, i int, lim Limits) (Op, int, error) {
	if len(b)-i < opFixedLen {
		return Op{}, 0, ErrTruncated
	}
	// Reserved flag bits must be zero: a future version can claim them
	// without old decoders silently misreading new frames.
	if b[i]&^flagHasObserve != 0 {
		return Op{}, 0, ErrBadValue
	}
	var op Op
	op.HasObserve = b[i]&flagHasObserve != 0
	op.Horizon = binary.LittleEndian.Uint16(b[i+1 : i+3])
	op.ObservedMbps = math.Float64frombits(binary.LittleEndian.Uint64(b[i+3 : i+11]))
	idLen := int(binary.LittleEndian.Uint16(b[i+11 : i+13]))
	if idLen == 0 {
		return Op{}, 0, ErrBadValue
	}
	if lim.MaxSessionIDLen > 0 && idLen > lim.MaxSessionIDLen {
		return Op{}, 0, ErrOversize
	}
	i += opFixedLen
	if len(b)-i < idLen {
		return Op{}, 0, ErrTruncated
	}
	op.SessionID = b[i : i+idLen]
	return op, i + idLen, nil
}

// DecodeOp decodes a MsgOp payload.
func DecodeOp(payload []byte, lim Limits) (Op, error) {
	op, n, err := decodeOpBody(payload, 0, lim)
	if err != nil {
		return Op{}, err
	}
	if n != len(payload) {
		return Op{}, ErrTrailingData
	}
	return op, nil
}

// AppendPrediction encodes a single-prediction response frame.
func AppendPrediction(dst []byte, mbps float64) []byte {
	off := len(dst)
	dst = appendHeader(dst, MsgPrediction)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(mbps))
	return patchLen(dst, off)
}

// DecodePrediction decodes a MsgPrediction payload.
func DecodePrediction(payload []byte) (float64, error) {
	if len(payload) != 8 {
		if len(payload) < 8 {
			return 0, ErrTruncated
		}
		return 0, ErrTrailingData
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(payload)), nil
}

// AppendBatch encodes a batch request frame: count(2) then the ops,
// applied by the server in order (per-session sub-order is what matters
// to the HMM filters; ops for different sessions are independent).
func AppendBatch(dst []byte, ops []Op) []byte {
	off := len(dst)
	dst = appendHeader(dst, MsgBatch)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ops)))
	for _, op := range ops {
		dst = appendOpBody(dst, op)
	}
	return patchLen(dst, off)
}

// DecodeBatch decodes a MsgBatch payload, appending the ops to dst (reuse a
// pooled slice to keep the steady state allocation-free). Session ids alias
// payload.
func DecodeBatch(payload []byte, lim Limits, dst []Op) ([]Op, error) {
	if len(payload) < 2 {
		return dst, ErrTruncated
	}
	count := int(binary.LittleEndian.Uint16(payload[:2]))
	if count == 0 {
		return dst, ErrBadValue
	}
	if lim.MaxBatchOps > 0 && count > lim.MaxBatchOps {
		return dst, ErrOversize
	}
	i := 2
	for k := 0; k < count; k++ {
		op, next, err := decodeOpBody(payload, i, lim)
		if err != nil {
			return dst, err
		}
		dst = append(dst, op)
		i = next
	}
	if i != len(payload) {
		return dst, ErrTrailingData
	}
	return dst, nil
}

// AppendBatchResult encodes the batch response: the model generation the
// batch was served under (read once from one pinned snapshot — a batch can
// never straddle two generations' metadata), count(2), then one fixed-width
// result per op, index-aligned with the request.
func AppendBatchResult(dst []byte, generation uint64, res []OpResult) []byte {
	off := len(dst)
	dst = appendHeader(dst, MsgBatchResult)
	dst = binary.LittleEndian.AppendUint64(dst, generation)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(res)))
	for _, r := range res {
		dst = append(dst, r.Code)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.PredictionMbps))
	}
	return patchLen(dst, off)
}

// DecodeBatchResult decodes a MsgBatchResult payload, appending to dst.
func DecodeBatchResult(payload []byte, lim Limits, dst []OpResult) ([]OpResult, uint64, error) {
	if len(payload) < 10 {
		return dst, 0, ErrTruncated
	}
	gen := binary.LittleEndian.Uint64(payload[:8])
	count := int(binary.LittleEndian.Uint16(payload[8:10]))
	if lim.MaxBatchOps > 0 && count > lim.MaxBatchOps {
		return dst, 0, ErrOversize
	}
	if len(payload) != 10+count*opResultLen {
		if len(payload) < 10+count*opResultLen {
			return dst, 0, ErrTruncated
		}
		return dst, 0, ErrTrailingData
	}
	i := 10
	for k := 0; k < count; k++ {
		dst = append(dst, OpResult{
			Code:           payload[i],
			PredictionMbps: math.Float64frombits(binary.LittleEndian.Uint64(payload[i+1 : i+9])),
		})
		i += opResultLen
	}
	return dst, gen, nil
}

// AppendError encodes an error response frame: status(2) + msglen(2) + msg.
// The status mirrors the HTTP status the frame rides on, so a client that
// only reads the body still learns the failure class.
func AppendError(dst []byte, status int, msg string) []byte {
	off := len(dst)
	dst = appendHeader(dst, MsgError)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(status))
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
	dst = append(dst, msg...)
	return patchLen(dst, off)
}

// DecodeError decodes a MsgError payload. The message aliases payload.
func DecodeError(payload []byte) (status int, msg []byte, err error) {
	if len(payload) < 4 {
		return 0, nil, ErrTruncated
	}
	status = int(binary.LittleEndian.Uint16(payload[:2]))
	n := int(binary.LittleEndian.Uint16(payload[2:4]))
	if len(payload)-4 < n {
		return 0, nil, ErrTruncated
	}
	if len(payload)-4 > n {
		return 0, nil, ErrTrailingData
	}
	return status, payload[4 : 4+n], nil
}
