package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestOpRoundTrip(t *testing.T) {
	for _, op := range []Op{
		{SessionID: []byte("s1"), ObservedMbps: 3.25, Horizon: 1, HasObserve: true},
		{SessionID: []byte("a-long-session-identifier-0123456789"), Horizon: 7},
		{SessionID: []byte("x"), ObservedMbps: 0, Horizon: 0, HasObserve: true},
	} {
		frame := AppendOp(nil, op)
		f, err := DecodeFrame(frame, DefaultLimits())
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if f.Type != MsgOp {
			t.Fatalf("type = %v, want MsgOp", f.Type)
		}
		got, err := DecodeOp(f.Payload, DefaultLimits())
		if err != nil {
			t.Fatalf("DecodeOp: %v", err)
		}
		if !bytes.Equal(got.SessionID, op.SessionID) || got.ObservedMbps != op.ObservedMbps ||
			got.Horizon != op.Horizon || got.HasObserve != op.HasObserve {
			t.Errorf("round trip mismatch: got %+v want %+v", got, op)
		}
	}
}

func TestPredictionRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 2.5, math.Pi, 1e5} {
		frame := AppendPrediction(nil, v)
		f, err := DecodeFrame(frame, DefaultLimits())
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodePrediction(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("prediction round trip: got %v want %v", got, v)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ops := []Op{
		{SessionID: []byte("s-a"), ObservedMbps: 1.5, Horizon: 1, HasObserve: true},
		{SessionID: []byte("s-b"), Horizon: 3},
		{SessionID: []byte("s-a"), ObservedMbps: 2.5, Horizon: 1, HasObserve: true},
	}
	frame := AppendBatch(nil, ops)
	f, err := DecodeFrame(frame, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgBatch {
		t.Fatalf("type = %v, want MsgBatch", f.Type)
	}
	got, err := DecodeBatch(f.Payload, DefaultLimits(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !bytes.Equal(got[i].SessionID, ops[i].SessionID) || got[i].ObservedMbps != ops[i].ObservedMbps ||
			got[i].Horizon != ops[i].Horizon || got[i].HasObserve != ops[i].HasObserve {
			t.Errorf("op %d mismatch: got %+v want %+v", i, got[i], ops[i])
		}
	}

	res := []OpResult{{PredictionMbps: 2.25}, {Code: OpUnknownSession}, {PredictionMbps: 4.5}}
	rframe := AppendBatchResult(nil, 42, res)
	rf, err := DecodeFrame(rframe, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	gotRes, gen, err := DecodeBatchResult(rf.Payload, DefaultLimits(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 42 {
		t.Errorf("generation = %d, want 42", gen)
	}
	if len(gotRes) != len(res) {
		t.Fatalf("decoded %d results, want %d", len(gotRes), len(res))
	}
	for i := range res {
		if gotRes[i] != res[i] {
			t.Errorf("result %d mismatch: got %+v want %+v", i, gotRes[i], res[i])
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	frame := AppendError(nil, 404, "unknown session")
	f, err := DecodeFrame(frame, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	status, msg, err := DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if status != 404 || string(msg) != "unknown session" {
		t.Errorf("got (%d, %q)", status, msg)
	}
}

// TestDecodeErrors walks the typed-error taxonomy: every hostile shape must
// land on its named sentinel, never a panic or a silent accept.
func TestDecodeErrors(t *testing.T) {
	lim := DefaultLimits()
	valid := AppendOp(nil, Op{SessionID: []byte("s"), Horizon: 1, HasObserve: true, ObservedMbps: 1})
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:5], ErrTruncated},
		{"bad magic", append([]byte{0x00, 0x00}, valid[2:]...), ErrBadMagic},
		{"json body", []byte(`{"session_id":"x"} padded out to header length`), ErrBadMagic},
		{"future version", func() []byte {
			b := append([]byte(nil), valid...)
			b[2] = 99
			return b
		}(), ErrVersion},
		{"unknown type", func() []byte {
			b := append([]byte(nil), valid...)
			b[3] = 0x7F
			return b
		}(), ErrUnknownType},
		{"truncated payload", valid[:len(valid)-1], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xFF), ErrTrailingData},
		{"oversize declared", func() []byte {
			b := append([]byte(nil), valid...)
			b[4], b[5], b[6], b[7] = 0xFF, 0xFF, 0xFF, 0x7F
			return b
		}(), ErrOversize},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame(tc.b, lim); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeOpBounds(t *testing.T) {
	lim := DefaultLimits()
	lim.MaxSessionIDLen = 4

	// Oversize session id is rejected by the limit, not the buffer length.
	frame := AppendOp(nil, Op{SessionID: []byte("too-long-for-limit"), Horizon: 1})
	f, err := DecodeFrame(frame, lim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeOp(f.Payload, lim); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize id: err = %v, want ErrOversize", err)
	}

	// Empty session id is never valid.
	frame = AppendOp(nil, Op{SessionID: nil, Horizon: 1})
	f, _ = DecodeFrame(frame, lim)
	if _, err := DecodeOp(f.Payload, lim); !errors.Is(err, ErrBadValue) {
		t.Errorf("empty id: err = %v, want ErrBadValue", err)
	}

	// An id length that over-reads the payload is truncation.
	frame = AppendOp(nil, Op{SessionID: []byte("abcd"), Horizon: 1})
	frame = frame[:len(frame)-2]                 // drop id bytes
	frame = patchLen(frame, 0)                   // re-stamp a consistent header
	f, err = DecodeFrame(frame, DefaultLimits()) // header is fine; body lies
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeOp(f.Payload, DefaultLimits()); !errors.Is(err, ErrTruncated) {
		t.Errorf("over-reading id: err = %v, want ErrTruncated", err)
	}
}

func TestDecodeBatchBounds(t *testing.T) {
	lim := DefaultLimits()
	lim.MaxBatchOps = 2
	ops := []Op{
		{SessionID: []byte("a"), Horizon: 1},
		{SessionID: []byte("b"), Horizon: 1},
		{SessionID: []byte("c"), Horizon: 1},
	}
	frame := AppendBatch(nil, ops)
	f, err := DecodeFrame(frame, lim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBatch(f.Payload, lim, nil); !errors.Is(err, ErrOversize) {
		t.Errorf("op count over limit: err = %v, want ErrOversize", err)
	}

	// A count that promises more ops than the payload holds is truncation.
	frame = AppendBatch(nil, ops[:1])
	frame[HeaderLen] = 5 // count low byte
	f, _ = DecodeFrame(frame, DefaultLimits())
	if _, err := DecodeBatch(f.Payload, DefaultLimits(), nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("lying count: err = %v, want ErrTruncated", err)
	}

	// Zero ops is meaningless.
	frame = AppendBatch(nil, nil)
	f, _ = DecodeFrame(frame, DefaultLimits())
	if _, err := DecodeBatch(f.Payload, DefaultLimits(), nil); !errors.Is(err, ErrBadValue) {
		t.Errorf("zero ops: err = %v, want ErrBadValue", err)
	}
}

// TestEncodeReuseNoAlloc pins the pooled-buffer contract: re-encoding into a
// buffer with capacity performs zero allocations, and decode is zero-copy.
func TestEncodeReuseNoAlloc(t *testing.T) {
	ops := []Op{
		{SessionID: []byte("sess-1"), ObservedMbps: 2.5, Horizon: 1, HasObserve: true},
		{SessionID: []byte("sess-2"), Horizon: 3},
	}
	buf := AppendBatch(nil, ops)
	opsBuf := make([]Op, 0, 8)
	lim := DefaultLimits()
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendBatch(buf[:0], ops)
		f, err := DecodeFrame(buf, lim)
		if err != nil {
			t.Fatal(err)
		}
		opsBuf = opsBuf[:0]
		opsBuf, err = DecodeBatch(f.Payload, lim, opsBuf)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("encode/decode cycle allocates %v times per op, want 0", allocs)
	}
}
