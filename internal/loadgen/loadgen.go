// Package loadgen is the open-loop load harness for the CS2P serving tier:
// it schedules synthetic session arrivals from a configurable rate function
// (constant / step / sweep / burst), drives each session through the real
// client stack (JSON v1 or binary v2, direct to a cs2p-server or through the
// cs2p-router), and measures intended-start-to-completion latency so
// coordinated omission cannot hide tail degradation.
//
// Open-loop means the arrival schedule is fixed before the run: session i
// starts at the intended time the rate function dictates, whether or not the
// target has finished serving sessions 0..i-1. A closed-loop driver (issue
// the next request when the previous one completes) silently stretches its
// own schedule when the target stalls, so its latency histogram reports the
// service time of the requests it *chose* to send — the coordinated-omission
// blind spot BENCH_serve.json's microbenchmarks share. Here every operation
// is scored against its intended time: a stalled target shows up as the
// queueing delay real users would see.
//
// The package splits into
//
//   - Profile/Schedule: pure arrival math — deterministic intended
//     timestamps, testable with no clock at all;
//   - Dispatch: walks a schedule against an injectable Clock (tests drive a
//     fake; the CLI uses the wall clock);
//   - Run: arrivals become synthetic playback sessions replaying tracegen
//     throughput with realistic chunk cadence through a Driver;
//   - FindCapacity: binary-search max-sustainable-RPS against an SLO;
//   - RunSoak: sustained churn with /metrics scrapes before and after,
//     asserting the flat-memory / flat-session invariants;
//   - Report: the schema-versioned BENCH_load.json emitted every run.
package loadgen

import (
	"context"
	"fmt"
	"math"
	"time"
)

// Clock abstracts time for the harness. The real implementation sleeps; the
// scheduler tests substitute a fake that advances instantly, so arrival
// timing is asserted with zero real sleeps.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() when
	// cancelled early. d <= 0 returns immediately.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock is the wall-clock implementation.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Mode names a rate-function shape.
type Mode string

// The four profile shapes (the invitro trace synthesizer's normal / sweep /
// burst generation, plus an explicit constant for capacity trials).
const (
	ModeConstant Mode = "constant"
	ModeStep     Mode = "step"
	ModeSweep    Mode = "sweep"
	ModeBurst    Mode = "burst"
)

// Profile is a sessions-per-second rate function r(t), t from run start.
//
//   - constant: r = StartRPS.
//   - step: r starts at StartRPS and increases by StepRPS every SlotEvery,
//     clamped at EndRPS when EndRPS > 0 (the synthesizer's staircase).
//   - sweep: r ramps linearly from StartRPS to EndRPS over the run.
//   - burst: r = BurstRPS inside windows of BurstLen opening every
//     BurstEvery (the first at t=0), StartRPS between them.
type Profile struct {
	Mode       Mode
	StartRPS   float64
	EndRPS     float64
	StepRPS    float64
	SlotEvery  time.Duration
	BurstRPS   float64
	BurstEvery time.Duration
	BurstLen   time.Duration
}

// segment is one piece of the compiled rate function: rate linear from r0 at
// t0 to r1 at t1 (seconds from run start).
type segment struct {
	t0, t1 float64
	r0, r1 float64
}

// area is the number of arrivals the segment generates up to t (t clamped
// into [t0, t1]).
func (s segment) area(t float64) float64 {
	if t <= s.t0 {
		return 0
	}
	if t > s.t1 {
		t = s.t1
	}
	x := t - s.t0
	if s.t1 == s.t0 {
		return 0
	}
	a := (s.r1 - s.r0) / (s.t1 - s.t0)
	return s.r0*x + 0.5*a*x*x
}

// compile turns a profile into piecewise-linear segments covering [0, dur).
func (p Profile) compile(dur time.Duration) ([]segment, error) {
	if dur <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive, got %v", dur)
	}
	if p.StartRPS < 0 || p.EndRPS < 0 || p.BurstRPS < 0 {
		return nil, fmt.Errorf("loadgen: rates must be non-negative")
	}
	d := dur.Seconds()
	switch p.Mode {
	case ModeConstant, "":
		if p.StartRPS <= 0 {
			return nil, fmt.Errorf("loadgen: constant profile needs StartRPS > 0")
		}
		return []segment{{0, d, p.StartRPS, p.StartRPS}}, nil
	case ModeStep:
		if p.SlotEvery <= 0 || p.StepRPS == 0 {
			return nil, fmt.Errorf("loadgen: step profile needs SlotEvery > 0 and StepRPS != 0")
		}
		var segs []segment
		slot := p.SlotEvery.Seconds()
		for t0, k := 0.0, 0; t0 < d; t0, k = t0+slot, k+1 {
			r := p.StartRPS + float64(k)*p.StepRPS
			if p.EndRPS > 0 {
				if p.StepRPS > 0 && r > p.EndRPS {
					r = p.EndRPS
				}
				if p.StepRPS < 0 && r < p.EndRPS {
					r = p.EndRPS
				}
			}
			if r < 0 {
				r = 0
			}
			t1 := math.Min(t0+slot, d)
			segs = append(segs, segment{t0, t1, r, r})
		}
		return segs, nil
	case ModeSweep:
		return []segment{{0, d, p.StartRPS, p.EndRPS}}, nil
	case ModeBurst:
		if p.BurstEvery <= 0 || p.BurstLen <= 0 || p.BurstLen > p.BurstEvery {
			return nil, fmt.Errorf("loadgen: burst profile needs 0 < BurstLen <= BurstEvery")
		}
		if p.BurstRPS <= 0 {
			return nil, fmt.Errorf("loadgen: burst profile needs BurstRPS > 0")
		}
		var segs []segment
		every, blen := p.BurstEvery.Seconds(), p.BurstLen.Seconds()
		for t0 := 0.0; t0 < d; t0 += every {
			bEnd := math.Min(t0+blen, d)
			segs = append(segs, segment{t0, bEnd, p.BurstRPS, p.BurstRPS})
			if bEnd < math.Min(t0+every, d) {
				segs = append(segs, segment{bEnd, math.Min(t0+every, d), p.StartRPS, p.StartRPS})
			}
		}
		return segs, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %q", p.Mode)
	}
}

// Schedule generates the intended arrival offsets of a profile one at a
// time. Arrival n fires when the integral of the rate function reaches n, so
// the first arrival is at t=0 and a constant r puts them exactly 1/r apart.
// The schedule is a pure function of (profile, duration): no clock, no
// randomness, no allocation proportional to the arrival count.
type Schedule struct {
	segs    []segment
	dur     time.Duration
	seg     int
	base    float64 // cumulative area at the start of segs[seg]
	emitted int
}

// NewSchedule validates the profile and compiles its arrival schedule.
func NewSchedule(p Profile, dur time.Duration) (*Schedule, error) {
	segs, err := p.compile(dur)
	if err != nil {
		return nil, err
	}
	return &Schedule{segs: segs, dur: dur}, nil
}

// Next returns the next intended arrival offset, or false when the schedule
// is exhausted (arrivals land strictly before the run duration).
func (s *Schedule) Next() (time.Duration, bool) {
	target := float64(s.emitted)
	for s.seg < len(s.segs) {
		sg := s.segs[s.seg]
		segArea := sg.area(sg.t1)
		need := target - s.base
		if need > segArea+1e-9 {
			s.base += segArea
			s.seg++
			continue
		}
		t, ok := sg.solve(need)
		if !ok {
			// Zero-rate stretch that cannot accumulate the remaining
			// fraction: move on.
			s.base += segArea
			s.seg++
			continue
		}
		d := time.Duration(math.Round(t * 1e9))
		if d >= s.dur {
			return 0, false
		}
		s.emitted++
		return d, true
	}
	return 0, false
}

// Emitted returns how many arrivals the schedule has produced so far.
func (s *Schedule) Emitted() int { return s.emitted }

// solve finds the time within the segment at which its own cumulative area
// reaches need. Returns false when the segment cannot accumulate it (zero
// rate).
func (s segment) solve(need float64) (float64, bool) {
	if need <= 1e-12 {
		if s.r0 <= 0 && s.r1 <= 0 {
			return 0, false
		}
		return s.t0, true
	}
	if s.t1 == s.t0 {
		return 0, false
	}
	a := (s.r1 - s.r0) / (s.t1 - s.t0)
	if math.Abs(a) < 1e-12 {
		if s.r0 <= 0 {
			return 0, false
		}
		return s.t0 + need/s.r0, true
	}
	disc := s.r0*s.r0 + 2*a*need
	if disc < 0 {
		return 0, false
	}
	x := (-s.r0 + math.Sqrt(disc)) / a
	if x < 0 || math.IsNaN(x) {
		return 0, false
	}
	return s.t0 + x, true
}

// Arrivals materializes a whole schedule — the test- and report-facing
// convenience; Dispatch streams instead.
func Arrivals(p Profile, dur time.Duration) ([]time.Duration, error) {
	s, err := NewSchedule(p, dur)
	if err != nil {
		return nil, err
	}
	var out []time.Duration
	for {
		t, ok := s.Next()
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

// Arrival is one dispatched session start: its index, the intended offset
// the schedule assigned, and how far behind that intent the dispatch
// actually ran (0 when on time). Late > 0 means the generator itself is the
// bottleneck — the run report surfaces the maximum so a saturated harness
// can't masquerade as a healthy target.
type Arrival struct {
	Index    int
	Intended time.Duration
	Late     time.Duration
}

// Dispatch walks the schedule against clk, calling fn at (or as soon as
// possible after) each intended offset from the instant Dispatch starts.
// Open-loop contract: fn is expected to hand the session to its own
// goroutine; a slow fn delays later dispatches (recorded in their Late), but
// never rewrites intended times. Returns the number of arrivals dispatched
// and ctx.Err() if cancelled mid-schedule.
func Dispatch(ctx context.Context, clk Clock, s *Schedule, fn func(Arrival)) (int, error) {
	start := clk.Now()
	n := 0
	for {
		t, ok := s.Next()
		if !ok {
			return n, nil
		}
		intended := start.Add(t)
		if wait := intended.Sub(clk.Now()); wait > 0 {
			if err := clk.Sleep(ctx, wait); err != nil {
				return n, err
			}
		}
		if err := ctx.Err(); err != nil {
			return n, err
		}
		late := clk.Now().Sub(intended)
		if late < 0 {
			late = 0
		}
		fn(Arrival{Index: n, Intended: t, Late: late})
		n++
	}
}
