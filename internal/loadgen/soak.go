package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"cs2p/internal/obs"
)

// SoakConfig shapes a sustained-churn soak: a constant-rate run long enough
// to cycle many sessions through start → chunks → log, bracketed by
// /metrics scrapes.
type SoakConfig struct {
	// RPS and Duration define the churn.
	RPS      float64
	Duration time.Duration
	// Run carries workload/cadence/clock; Profile and Duration are
	// overwritten.
	Run RunConfig
	// MetricsURL is the target's scrape endpoint (a cs2p-server
	// -debug-addr /metrics, or a self-target's /metrics route).
	MetricsURL string
	// HTTPClient performs the scrapes (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Settle is how long to wait after the churn stops before the "after"
	// scrape, so in-flight session teardown lands before the leak check
	// reads the gauges. 0 scrapes immediately; negative is rejected.
	Settle time.Duration
	// ScrapeTimeout bounds each bracketing scrape (0 = no bound; negative
	// is rejected). A hung /metrics endpoint must fail the soak, not wedge
	// the harness.
	ScrapeTimeout time.Duration
}

// ScrapeMetrics fetches and strictly parses a Prometheus scrape, returning
// samples keyed by canonical `name{labels}` form.
func ScrapeMetrics(ctx context.Context, hc *http.Client, url string) (map[string]float64, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("loadgen: building scrape request: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scraping %s: status %d", url, resp.StatusCode)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scraping %s: %w", url, err)
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		out[s.Key()] = s.Value
	}
	return out, nil
}

// Metric keys the soak check reads from the serving stack's registry.
const (
	metricSessionsActive  = "cs2p_engine_sessions_active"
	metricSessionsStarted = "cs2p_engine_sessions_started_total"
	metricSessionsEnded   = "cs2p_engine_sessions_ended_total"
	metricLogEvictions    = "cs2p_engine_log_evictions_total"
	metricHeapAlloc       = "cs2p_runtime_heap_alloc_bytes"
	metricGoroutines      = "cs2p_runtime_goroutines"
)

// RunSoak churns sessions at a constant rate and checks the target came
// back to baseline: the active-session gauge must return to its pre-churn
// value (every synthetic session ends with a QoE log, so anything left over
// is a leak), and the heap/goroutine gauges are reported for trend review.
// The serving-side counters come from the same /metrics contract the
// cluster already exposes — the soak needs no privileged hook into the
// server under test.
func RunSoak(ctx context.Context, d Driver, cfg SoakConfig) (*SoakSummary, *Stats, error) {
	if cfg.RPS <= 0 || cfg.Duration <= 0 {
		return nil, nil, fmt.Errorf("loadgen: soak needs RPS and Duration > 0")
	}
	if cfg.MetricsURL == "" {
		return nil, nil, fmt.Errorf("loadgen: soak needs a MetricsURL to scrape")
	}
	if cfg.Settle < 0 {
		return nil, nil, fmt.Errorf("loadgen: soak settle must be >= 0, got %v", cfg.Settle)
	}
	if cfg.ScrapeTimeout < 0 {
		return nil, nil, fmt.Errorf("loadgen: soak scrape timeout must be >= 0, got %v", cfg.ScrapeTimeout)
	}
	scrape := func() (map[string]float64, error) {
		sctx := ctx
		if cfg.ScrapeTimeout > 0 {
			var cancel context.CancelFunc
			sctx, cancel = context.WithTimeout(ctx, cfg.ScrapeTimeout)
			defer cancel()
		}
		return ScrapeMetrics(sctx, cfg.HTTPClient, cfg.MetricsURL)
	}
	before, err := scrape()
	if err != nil {
		return nil, nil, err
	}
	rc := cfg.Run
	rc.Profile = Profile{Mode: ModeConstant, StartRPS: cfg.RPS}
	rc.Duration = cfg.Duration
	if rc.IDPrefix == "" || rc.IDPrefix == "load" {
		rc.IDPrefix = "soak"
	}
	stats, err := Run(ctx, d, rc)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Settle > 0 {
		clk := rc.Clock
		if clk == nil {
			clk = RealClock{}
		}
		if err := clk.Sleep(ctx, cfg.Settle); err != nil {
			return nil, stats, err
		}
	}
	after, err := scrape()
	if err != nil {
		return nil, stats, err
	}
	s := &SoakSummary{
		SessionsBefore:    before[metricSessionsActive],
		SessionsAfter:     after[metricSessionsActive],
		StartedDelta:      after[metricSessionsStarted] - before[metricSessionsStarted],
		EndedDelta:        after[metricSessionsEnded] - before[metricSessionsEnded],
		LogEvictionsDelta: after[metricLogEvictions] - before[metricLogEvictions],
		HeapBeforeBytes:   before[metricHeapAlloc],
		HeapAfterBytes:    after[metricHeapAlloc],
		GoroutinesBefore:  before[metricGoroutines],
		GoroutinesAfter:   after[metricGoroutines],
	}
	s.Flat = s.SessionsAfter == s.SessionsBefore
	return s, stats, nil
}
