package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cs2p/internal/httpapi"
)

// Scenario is one named measurement against one target: a main open-loop run,
// an optional capacity search, and an optional soak — everything that becomes
// one RunReport row in BENCH_load.json.
type Scenario struct {
	// Name labels the report row ("direct", "router", ...).
	Name string
	// TargetURL is the front door to drive (a cs2p-server or cs2p-router).
	TargetURL string
	// WireBinary selects the binary v2 protocol instead of JSON v1.
	WireBinary bool
	// Run is the main run's shape (Profile, Duration, Workload, cadence).
	Run RunConfig
	// SLO grades the error budget and, when Capacity is set, the trials.
	SLO SLO
	// Capacity, when non-nil, runs a max-sustainable-RPS search after the
	// main run (its Run/SLO fields are filled from the scenario).
	Capacity *CapacityConfig
	// SoakRPS/SoakDuration, when both > 0, run a flat-memory soak after the
	// main run, scraping MetricsURL before and after. SoakSettle waits
	// between churn end and the "after" scrape; SoakScrapeTimeout bounds
	// each scrape (0 = unbounded).
	SoakRPS           float64
	SoakDuration      time.Duration
	SoakSettle        time.Duration
	SoakScrapeTimeout time.Duration
	MetricsURL        string
}

// pathCounter folds httpapi call observations into per-route op counts.
type pathCounter struct {
	mu sync.Mutex
	m  map[string]int64
}

func (p *pathCounter) observe(o httpapi.CallObservation) {
	p.mu.Lock()
	p.m[o.Path]++
	p.mu.Unlock()
}

func (p *pathCounter) snapshot() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(p.m))
	for k, v := range p.m {
		out[k] = v
	}
	return out
}

// RunScenario executes one scenario end to end through the real client stack
// and folds the results into a report row. The client is built here — wire
// selection and the per-route counter hook are scenario concerns, not
// caller boilerplate.
func RunScenario(ctx context.Context, sc Scenario) (RunReport, error) {
	if sc.Name == "" {
		return RunReport{}, fmt.Errorf("loadgen: scenario needs a name")
	}
	if sc.TargetURL == "" {
		return RunReport{}, fmt.Errorf("loadgen: scenario %q needs a target URL", sc.Name)
	}
	if sc.SLO.MaxP99 <= 0 {
		sc.SLO = DefaultSLO()
	}
	cl := httpapi.NewClient(sc.TargetURL)
	cl.SetWireBinary(sc.WireBinary)
	pc := &pathCounter{m: make(map[string]int64)}
	cl.SetCallObserver(pc.observe)
	wire := "json"
	if sc.WireBinary {
		wire = "binary"
	}

	rc := sc.Run
	if rc.IDPrefix == "" || rc.IDPrefix == "load" {
		rc.IDPrefix = sc.Name
	}
	stats, err := Run(ctx, cl, rc)
	if err != nil {
		return RunReport{}, fmt.Errorf("loadgen: scenario %q: %w", sc.Name, err)
	}
	rr := BuildRunReport(sc.Name, rc, wire, sc.SLO, stats)
	rr.RequestsByPath = pc.snapshot()

	if sc.Capacity != nil {
		cc := *sc.Capacity
		cc.SLO = sc.SLO
		cc.Run = rc
		res, err := FindCapacity(ctx, cl, cc)
		if err != nil {
			return rr, fmt.Errorf("loadgen: scenario %q capacity search: %w", sc.Name, err)
		}
		rr.Capacity = BuildCapacityReport(res, sc.SLO)
	}

	if sc.SoakRPS > 0 && sc.SoakDuration > 0 {
		if sc.MetricsURL == "" {
			return rr, fmt.Errorf("loadgen: scenario %q: soak needs a metrics URL", sc.Name)
		}
		soakRun := rc
		soakRun.IDPrefix = sc.Name + "-soak"
		soak, _, err := RunSoak(ctx, cl, SoakConfig{
			RPS:           sc.SoakRPS,
			Duration:      sc.SoakDuration,
			Run:           soakRun,
			MetricsURL:    sc.MetricsURL,
			Settle:        sc.SoakSettle,
			ScrapeTimeout: sc.SoakScrapeTimeout,
		})
		if err != nil {
			return rr, fmt.Errorf("loadgen: scenario %q soak: %w", sc.Name, err)
		}
		rr.Soak = soak
	}
	return rr, nil
}
