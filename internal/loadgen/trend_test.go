package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capRun builds a minimal valid run row with a capacity estimate (rps <= 0
// leaves the capacity search off).
func capRun(name string, rps float64) RunReport {
	rr := RunReport{Name: name, Mode: "constant", Wire: "json"}
	if rps > 0 {
		rr.Capacity = &CapacityReport{MaxSustainableRPS: rps, SLOP99Ms: 1000}
	}
	return rr
}

func TestCompareCapacityGates(t *testing.T) {
	base := NewReport(capRun("direct", 100), capRun("router", 50))

	// Within tolerance (exactly -10% is NOT a regression at the 10% gate).
	deltas, err := CompareCapacity(base, NewReport(capRun("direct", 90), capRun("router", 55)), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if d.Regressed {
			t.Fatalf("delta regressed within tolerance: %+v", d)
		}
	}

	// Beyond tolerance on one scenario.
	deltas, err = CompareCapacity(base, NewReport(capRun("direct", 89.9), capRun("router", 50)), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	var regressed []string
	for _, d := range deltas {
		if d.Regressed {
			regressed = append(regressed, d.Name)
		}
	}
	if len(regressed) != 1 || regressed[0] != "direct" {
		t.Fatalf("regressed = %v, want [direct]", regressed)
	}

	// Improvements report positive change.
	deltas, err = CompareCapacity(base, NewReport(capRun("direct", 200), capRun("router", 50)), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if deltas[0].Change != 1.0 {
		t.Fatalf("change = %v, want 1.0", deltas[0].Change)
	}
}

func TestCompareCapacityStructuralErrors(t *testing.T) {
	base := NewReport(capRun("direct", 100))
	if _, err := CompareCapacity(base, NewReport(capRun("direct", 100)), 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, err := CompareCapacity(base, NewReport(capRun("direct", 100)), 1); err == nil {
		t.Fatal("tolerance 1 accepted")
	}
	// A renamed scenario must not silently pass the gate.
	if _, err := CompareCapacity(base, NewReport(capRun("renamed", 100)), 0.1); err == nil {
		t.Fatal("missing baseline scenario accepted")
	}
	// Dropping the capacity search must not pass either.
	if _, err := CompareCapacity(base, NewReport(capRun("direct", 0)), 0.1); err == nil {
		t.Fatal("lost capacity search accepted")
	}
	// A baseline with nothing to compare is a misconfiguration, not a pass.
	if _, err := CompareCapacity(NewReport(capRun("direct", 0)), NewReport(capRun("direct", 100)), 0.1); err == nil {
		t.Fatal("capacity-less baseline accepted")
	}
	// New scenarios in the current report need no baseline entry.
	if _, err := CompareCapacity(base, NewReport(capRun("direct", 100), capRun("new", 70)), 0.1); err != nil {
		t.Fatalf("new scenario rejected: %v", err)
	}
}

func TestGateCapacityFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	base := NewReport(capRun("direct", 100))
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	deltas, err := GateCapacityFile(path, NewReport(capRun("direct", 120)), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Regressed {
		t.Fatalf("deltas = %+v", deltas)
	}
	if _, err := GateCapacityFile(filepath.Join(dir, "missing.json"), base, 0.10); err == nil {
		t.Fatal("missing baseline file accepted")
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := GateCapacityFile(path, base, 0.10); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("corrupt baseline error = %v", err)
	}
}
