package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ReportSchemaVersion is bumped whenever BENCH_load.json's shape changes
// incompatibly; ParseReport refuses versions it does not know, so the CI
// trend tooling fails loudly instead of misreading old runs.
const ReportSchemaVersion = 1

// Report is the whole BENCH_load.json document: one file per harness
// invocation, one RunReport per scenario (direct-server, router-fronted, a
// user-pointed target, ...).
type Report struct {
	SchemaVersion int         `json:"schema_version"`
	GeneratedBy   string      `json:"generated_by"`
	Runs          []RunReport `json:"runs"`
}

// LatencySummary is one distribution's quantile readout, in milliseconds
// (JSON-friendly; the raw histograms live only inside the run).
type LatencySummary struct {
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// ErrorBudget reports error pressure against the SLO's budget: Consumed is
// the fraction of the budget the observed error rate used (1.0 = at budget,
// >1 = blown).
type ErrorBudget struct {
	Budget    float64 `json:"budget"`
	ErrorRate float64 `json:"error_rate"`
	Consumed  float64 `json:"consumed"`
}

// TrialReport is one capacity-search probe.
type TrialReport struct {
	RPS         float64 `json:"rps"`
	Sustainable bool    `json:"sustainable"`
	IntendedP99 float64 `json:"intended_p99_ms"`
	ErrorRate   float64 `json:"error_rate"`
}

// CapacityReport is the binary-search outcome.
type CapacityReport struct {
	MaxSustainableRPS float64       `json:"max_sustainable_rps"`
	SLOP99Ms          float64       `json:"slo_p99_ms"`
	Trials            []TrialReport `json:"trials"`
}

// SoakSummary is the flat-process check of a sustained-churn run, from
// /metrics scrapes before and after.
type SoakSummary struct {
	SessionsBefore    float64 `json:"sessions_before"`
	SessionsAfter     float64 `json:"sessions_after"`
	StartedDelta      float64 `json:"started_delta"`
	EndedDelta        float64 `json:"ended_delta"`
	LogEvictionsDelta float64 `json:"log_evictions_delta"`
	HeapBeforeBytes   float64 `json:"heap_before_bytes"`
	HeapAfterBytes    float64 `json:"heap_after_bytes"`
	GoroutinesBefore  float64 `json:"goroutines_before"`
	GoroutinesAfter   float64 `json:"goroutines_after"`
	// Flat is the session-plane invariant: the active-session gauge
	// returned to its pre-churn baseline.
	Flat bool `json:"flat"`
}

// RunReport is one scenario's results.
type RunReport struct {
	Name              string           `json:"name"`
	Mode              string           `json:"mode"`
	Wire              string           `json:"wire"`
	DurationSeconds   float64          `json:"duration_seconds"`
	Sessions          int64            `json:"sessions"`
	Ops               int64            `json:"ops"`
	Errors            int64            `json:"errors"`
	MaxDispatchLateMs float64          `json:"max_dispatch_late_ms"`
	IntendedLatency   LatencySummary   `json:"intended_latency"`
	ServiceLatency    LatencySummary   `json:"service_latency"`
	ErrorBudget       ErrorBudget      `json:"error_budget"`
	RequestsByPath    map[string]int64 `json:"requests_by_path,omitempty"`
	Capacity          *CapacityReport  `json:"capacity,omitempty"`
	Soak              *SoakSummary     `json:"soak,omitempty"`
}

// NewReport wraps runs into a versioned document.
func NewReport(runs ...RunReport) Report {
	return Report{SchemaVersion: ReportSchemaVersion, GeneratedBy: "cs2p-loadgen", Runs: runs}
}

// latencySummary converts a Stats triple to milliseconds.
func latencySummary(p50, p99, p999, max time.Duration) LatencySummary {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{P50Ms: ms(p50), P99Ms: ms(p99), P999Ms: ms(p999), MaxMs: ms(max)}
}

// BuildRunReport folds one run's stats (and optional capacity/soak results)
// into the report row.
func BuildRunReport(name string, cfg RunConfig, wire string, slo SLO, stats *Stats) RunReport {
	budget := slo.MaxErrorBudget
	eb := ErrorBudget{Budget: budget, ErrorRate: stats.ErrorRate}
	if budget > 0 {
		eb.Consumed = stats.ErrorRate / budget
	}
	mode := cfg.Profile.Mode
	if mode == "" {
		mode = ModeConstant
	}
	return RunReport{
		Name:              name,
		Mode:              string(mode),
		Wire:              wire,
		DurationSeconds:   cfg.Duration.Seconds(),
		Sessions:          stats.Sessions,
		Ops:               stats.Ops,
		Errors:            stats.Errors,
		MaxDispatchLateMs: float64(stats.MaxDispatchLate) / float64(time.Millisecond),
		IntendedLatency:   latencySummary(stats.IntendedP50, stats.IntendedP99, stats.IntendedP999, stats.IntendedMax),
		ServiceLatency:    latencySummary(stats.ServiceP50, stats.ServiceP99, stats.ServiceP999, stats.ServiceMax),
		ErrorBudget:       eb,
	}
}

// BuildCapacityReport folds a search result into its report form.
func BuildCapacityReport(res CapacityResult, slo SLO) *CapacityReport {
	cr := &CapacityReport{
		MaxSustainableRPS: res.MaxSustainableRPS,
		SLOP99Ms:          float64(slo.MaxP99) / float64(time.Millisecond),
	}
	for _, t := range res.Trials {
		cr.Trials = append(cr.Trials, TrialReport{
			RPS:         t.RPS,
			Sustainable: t.Sustainable,
			IntendedP99: float64(t.Stats.IntendedP99) / float64(time.Millisecond),
			ErrorRate:   t.Stats.ErrorRate,
		})
	}
	return cr
}

// Marshal renders the report as indented JSON with a trailing newline (the
// stable on-disk form of BENCH_load.json).
func (r Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: encoding report: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report to path (0644).
func (r Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("loadgen: writing report: %w", err)
	}
	return nil
}

// ParseReport decodes and validates a BENCH_load.json document with the
// same strictness contract obs.ParseText applies to scrapes: unknown
// fields, unknown schema versions, trailing garbage, and internally
// inconsistent numbers are all hard errors, so anything that trends these
// files can rely on the shape instead of defensively re-checking it.
func ParseReport(b []byte) (Report, error) {
	var r Report
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Report{}, fmt.Errorf("loadgen: parsing report: %w", err)
	}
	if dec.More() {
		return Report{}, fmt.Errorf("loadgen: parsing report: trailing data after document")
	}
	if r.SchemaVersion != ReportSchemaVersion {
		return Report{}, fmt.Errorf("loadgen: unknown report schema version %d (want %d)", r.SchemaVersion, ReportSchemaVersion)
	}
	if len(r.Runs) == 0 {
		return Report{}, fmt.Errorf("loadgen: report has no runs")
	}
	for i := range r.Runs {
		if err := r.Runs[i].validate(); err != nil {
			return Report{}, fmt.Errorf("loadgen: report run %d: %w", i, err)
		}
	}
	return r, nil
}

func (rr *RunReport) validate() error {
	if rr.Name == "" {
		return fmt.Errorf("missing name")
	}
	switch Mode(rr.Mode) {
	case ModeConstant, ModeStep, ModeSweep, ModeBurst:
	default:
		return fmt.Errorf("unknown mode %q", rr.Mode)
	}
	if rr.Wire != "json" && rr.Wire != "binary" {
		return fmt.Errorf("unknown wire %q", rr.Wire)
	}
	if rr.Sessions < 0 || rr.Ops < 0 || rr.Errors < 0 || rr.Errors > rr.Ops {
		return fmt.Errorf("inconsistent counts (sessions %d, ops %d, errors %d)", rr.Sessions, rr.Ops, rr.Errors)
	}
	if rr.ErrorBudget.ErrorRate < 0 || rr.ErrorBudget.ErrorRate > 1 {
		return fmt.Errorf("error rate %v outside [0,1]", rr.ErrorBudget.ErrorRate)
	}
	for _, l := range []struct {
		name string
		s    LatencySummary
	}{{"intended_latency", rr.IntendedLatency}, {"service_latency", rr.ServiceLatency}} {
		if l.s.P50Ms < 0 || l.s.P99Ms < l.s.P50Ms || l.s.P999Ms < l.s.P99Ms {
			return fmt.Errorf("%s quantiles not monotone (p50 %v, p99 %v, p999 %v)",
				l.name, l.s.P50Ms, l.s.P99Ms, l.s.P999Ms)
		}
	}
	if rr.Capacity != nil && rr.Capacity.MaxSustainableRPS < 0 {
		return fmt.Errorf("negative capacity estimate")
	}
	return nil
}
