package loadgen

import (
	"context"
	"testing"
	"time"
)

// TestScenariosDirectAndRouter is the end-to-end path `make bench-load`
// exercises: one direct-server scenario on the JSON wire and one
// router-fronted scenario on the binary wire, both with a tiny capacity
// search, folded into one BENCH_load.json document that the strict parser
// accepts.
func TestScenariosDirectAndRouter(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two serving tiers")
	}
	direct, err := StartSelf(SelfOptions{Replicas: 1, Seed: 5, TrainSessions: 120})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	routed, err := StartSelf(SelfOptions{Replicas: 3, Seed: 5, TrainSessions: 120})
	if err != nil {
		t.Fatal(err)
	}
	defer routed.Close()

	workload := SyntheticWorkload(5, 30)
	run := RunConfig{
		Profile:       Profile{Mode: ModeBurst, StartRPS: 10, BurstRPS: 60, BurstEvery: 100 * time.Millisecond, BurstLen: 20 * time.Millisecond},
		Duration:      300 * time.Millisecond,
		Workload:      workload,
		ChunkInterval: 2 * time.Millisecond,
		MaxChunks:     3,
	}
	capCfg := &CapacityConfig{StartRPS: 40, MaxRPS: 80, TrialDuration: 100 * time.Millisecond, Bisections: 1}

	scenarios := []Scenario{
		{Name: "direct", TargetURL: direct.URL, Run: run, Capacity: capCfg,
			SoakRPS: 50, SoakDuration: 150 * time.Millisecond, MetricsURL: direct.MetricsURL},
		{Name: "router", TargetURL: routed.URL, WireBinary: true, Run: run, Capacity: capCfg},
	}
	var runs []RunReport
	for _, sc := range scenarios {
		rr, err := RunScenario(context.Background(), sc)
		if err != nil {
			t.Fatalf("scenario %s: %v", sc.Name, err)
		}
		runs = append(runs, rr)
	}

	if runs[0].Wire != "json" || runs[1].Wire != "binary" {
		t.Fatalf("wire labels: %q / %q", runs[0].Wire, runs[1].Wire)
	}
	for _, rr := range runs {
		if rr.Sessions == 0 || rr.Ops == 0 {
			t.Fatalf("scenario %s drove no traffic: %+v", rr.Name, rr)
		}
		if rr.Errors != 0 {
			t.Fatalf("scenario %s errored %d/%d ops", rr.Name, rr.Errors, rr.Ops)
		}
		if rr.Capacity == nil || rr.Capacity.MaxSustainableRPS <= 0 {
			t.Fatalf("scenario %s missing capacity estimate: %+v", rr.Name, rr.Capacity)
		}
		if len(rr.RequestsByPath) == 0 {
			t.Fatalf("scenario %s recorded no per-route counts", rr.Name)
		}
	}
	// The JSON scenario's per-route counts must cover the whole session
	// lifecycle on the v1 routes.
	for _, path := range []string{"/v1/session/start", "/v1/predict", "/v1/log"} {
		if runs[0].RequestsByPath[path] == 0 {
			t.Fatalf("direct scenario missing %s traffic: %v", path, runs[0].RequestsByPath)
		}
	}
	if runs[0].Soak == nil || !runs[0].Soak.Flat {
		t.Fatalf("direct scenario soak not flat: %+v", runs[0].Soak)
	}

	doc, err := NewReport(runs...).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseReport(doc)
	if err != nil {
		t.Fatalf("end-to-end BENCH_load.json rejected by strict parser: %v\n%s", err, doc)
	}
	if len(parsed.Runs) != 2 {
		t.Fatalf("parsed %d runs, want 2", len(parsed.Runs))
	}
}

func TestRunScenarioValidation(t *testing.T) {
	if _, err := RunScenario(context.Background(), Scenario{TargetURL: "http://x"}); err == nil {
		t.Fatal("nameless scenario accepted")
	}
	if _, err := RunScenario(context.Background(), Scenario{Name: "x"}); err == nil {
		t.Fatal("targetless scenario accepted")
	}
	// Soak without a metrics URL: the main run completes (against a dead
	// target every op just errors), then the soak config is rejected.
	if _, err := RunScenario(context.Background(), Scenario{
		Name: "x", TargetURL: "http://127.0.0.1:1",
		Run: RunConfig{
			Profile:       Profile{Mode: ModeConstant, StartRPS: 20},
			Duration:      100 * time.Millisecond,
			Workload:      SyntheticWorkload(1, 1),
			ChunkInterval: time.Millisecond,
			MaxChunks:     1,
		},
		SoakRPS: 1, SoakDuration: time.Second,
	}); err == nil {
		t.Fatal("soak without metrics URL accepted")
	}
}
