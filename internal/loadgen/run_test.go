package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"cs2p/internal/engine"
	"cs2p/internal/faultinject"
	"cs2p/internal/httpapi"
	"cs2p/internal/trace"
)

// fakeDriver is an in-memory Driver with injectable per-call latency and
// failures.
type fakeDriver struct {
	starts  atomic.Int64
	chunks  atomic.Int64
	logs    atomic.Int64
	delay   time.Duration
	failObs bool
	failReg bool
}

func (f *fakeDriver) pause() {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
}

func (f *fakeDriver) StartSession(id string, _ trace.Features, _ int64) (engine.StartResponse, error) {
	f.pause()
	f.starts.Add(1)
	if f.failReg {
		return engine.StartResponse{}, fmt.Errorf("fake: registration refused")
	}
	return engine.StartResponse{ClusterID: id}, nil
}

func (f *fakeDriver) ObserveAndPredict(string, float64, int) (float64, error) {
	f.pause()
	f.chunks.Add(1)
	if f.failObs {
		return 0, fmt.Errorf("fake: observe refused")
	}
	return 1.0, nil
}

func (f *fakeDriver) Log(engine.SessionLog) error {
	f.pause()
	f.logs.Add(1)
	return nil
}

func testWorkload(chunks int) []*trace.Session {
	tp := make([]float64, chunks)
	for i := range tp {
		tp[i] = 2.5
	}
	return []*trace.Session{{ID: "w0", Throughput: tp}}
}

func TestRunCountsEveryOperation(t *testing.T) {
	d := &fakeDriver{}
	stats, err := Run(context.Background(), d, RunConfig{
		Profile:       Profile{Mode: ModeConstant, StartRPS: 50},
		Duration:      200 * time.Millisecond,
		Workload:      testWorkload(3),
		ChunkInterval: time.Millisecond,
		MaxChunks:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 arrivals; each session is 1 start + 2 chunks + 1 log.
	if stats.Sessions != 10 || stats.Dispatched != 10 {
		t.Fatalf("sessions %d dispatched %d, want 10/10", stats.Sessions, stats.Dispatched)
	}
	if stats.Ops != 40 || stats.Errors != 0 || stats.ErrorRate != 0 {
		t.Fatalf("ops %d errors %d rate %v, want 40/0/0", stats.Ops, stats.Errors, stats.ErrorRate)
	}
	if d.starts.Load() != 10 || d.chunks.Load() != 20 || d.logs.Load() != 10 {
		t.Fatalf("driver saw %d/%d/%d start/chunk/log, want 10/20/10",
			d.starts.Load(), d.chunks.Load(), d.logs.Load())
	}
	if stats.IntendedP99 < stats.IntendedP50 || stats.ServiceP999 < stats.ServiceP99 {
		t.Fatalf("quantiles not monotone: %+v", stats)
	}
}

func TestRunChunkErrorsAreBudgeted(t *testing.T) {
	d := &fakeDriver{failObs: true}
	stats, err := Run(context.Background(), d, RunConfig{
		Profile:       Profile{Mode: ModeConstant, StartRPS: 40},
		Duration:      100 * time.Millisecond,
		Workload:      testWorkload(2),
		ChunkInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 sessions x (1 start + 2 failing chunks + 1 log): session flow
	// continues past chunk errors; only the error budget records them.
	if stats.Ops != 16 || stats.Errors != 8 {
		t.Fatalf("ops %d errors %d, want 16/8", stats.Ops, stats.Errors)
	}
	if stats.ErrorRate != 0.5 {
		t.Fatalf("error rate %v, want 0.5", stats.ErrorRate)
	}
}

func TestRunRegistrationFailureAbortsSession(t *testing.T) {
	d := &fakeDriver{failReg: true}
	stats, err := Run(context.Background(), d, RunConfig{
		Profile:       Profile{Mode: ModeConstant, StartRPS: 40},
		Duration:      100 * time.Millisecond,
		Workload:      testWorkload(2),
		ChunkInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the 4 failed registrations — no chunk or log traffic follows.
	if stats.Ops != 4 || stats.Errors != 4 || d.chunks.Load() != 0 || d.logs.Load() != 0 {
		t.Fatalf("ops %d errors %d chunks %d logs %d, want 4/4/0/0",
			stats.Ops, stats.Errors, d.chunks.Load(), d.logs.Load())
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), &fakeDriver{}, RunConfig{
		Profile: Profile{Mode: ModeConstant, StartRPS: 1}, Duration: time.Second,
		ChunkInterval: time.Millisecond,
	}); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := Run(context.Background(), &fakeDriver{}, RunConfig{
		Profile: Profile{Mode: ModeConstant, StartRPS: 1}, Duration: time.Second,
		Workload: testWorkload(1),
	}); err == nil {
		t.Fatal("zero chunk interval accepted")
	}
}

// TestCoordinatedOmissionRegression is the harness's reason to exist. A
// real server is slowed by 5ms of injected transport latency while one
// session tries to sustain a 1ms chunk cadence. Closed-loop (service-time)
// accounting times each request from when it was *sent* — after the previous
// reply — so it reports ~5ms and passes a naive stall check. Intended-time
// accounting scores the same operations against the fixed schedule and shows
// the backlog growing by ~4ms per chunk into an unmistakable stall. If this
// test fails on the intended side, the harness has re-acquired the
// coordinated-omission blind spot.
func TestCoordinatedOmissionRegression(t *testing.T) {
	target, err := StartSelf(SelfOptions{Replicas: 1, Seed: 7, TrainSessions: 120})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	cl := httpapi.NewClient(target.URL)
	cl.SetTransport(faultinject.NewTransport(http.DefaultTransport, faultinject.Config{
		Seed:        1,
		LatencyProb: 1,
		Latency:     8 * time.Millisecond,
	}))

	w := SyntheticWorkload(7, 1)
	for len(w[0].Throughput) < 60 {
		w[0].Throughput = append(w[0].Throughput, w[0].Throughput...)
	}

	stats, err := Run(context.Background(), cl, RunConfig{
		// One session: the backlog must come from sequential chunks inside
		// a session, the exact queue a closed-loop driver hides.
		Profile:       Profile{Mode: ModeConstant, StartRPS: 1},
		Duration:      500 * time.Millisecond,
		Workload:      w,
		ChunkInterval: time.Millisecond,
		MaxChunks:     60,
		IDPrefix:      "co",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 1 || stats.Ops != 62 {
		t.Fatalf("sessions %d ops %d, want 1/62", stats.Sessions, stats.Ops)
	}

	// The median is the stable readout (the p99 of 62 samples is a single
	// worst op and soaks up scheduler/GC noise under -race); asserting on it
	// keeps the test deterministic while preserving the story.
	const stall = 60 * time.Millisecond
	// The naive closed-loop number stays green: the typical request
	// completes in ~8ms, nowhere near the stall threshold. A naive stall
	// check against service time passes — wrongly.
	if stats.ServiceP50 >= stall {
		t.Fatalf("service p50 %v >= %v: injected latency leaked into per-request time; "+
			"this test needs service time to look healthy", stats.ServiceP50, stall)
	}
	// Intended-time accounting sees the truth: the backlog grows ~7ms per
	// chunk, so by mid-session the schedule is already past the threshold
	// the naive view never crossed.
	if stats.IntendedP50 < stall || stats.IntendedP99 < stall {
		t.Fatalf("intended p50 %v / p99 %v below %v: coordinated omission regression — "+
			"the stall is invisible again", stats.IntendedP50, stats.IntendedP99, stall)
	}
	if stats.IntendedP99 < 2*stats.ServiceP99 {
		t.Fatalf("intended p99 %v not clearly above service p99 %v",
			stats.IntendedP99, stats.ServiceP99)
	}
	// The exact maxima (atomics, not bucket-interpolated) agree with the
	// histogram's story.
	if stats.IntendedMax < stall {
		t.Fatalf("intended max %v below %v: stall not visible in exact maxima",
			stats.IntendedMax, stall)
	}
}

func TestFindCapacityBracketsTheKnee(t *testing.T) {
	// The fake driver is effectively infinitely fast, so the search must
	// climb to its cap and report the cap as the answer.
	d := &fakeDriver{}
	res, err := FindCapacity(context.Background(), d, CapacityConfig{
		StartRPS:      20,
		MaxRPS:        80,
		TrialDuration: 50 * time.Millisecond,
		Run: RunConfig{
			Workload:      testWorkload(1),
			ChunkInterval: time.Millisecond,
			IDPrefix:      "cap",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxSustainableRPS != 80 {
		t.Fatalf("capacity %v, want the 80 rps cap", res.MaxSustainableRPS)
	}
	for i, tr := range res.Trials {
		if !tr.Sustainable {
			t.Fatalf("trial %d at %v rps unexpectedly failed: %+v", i, tr.RPS, tr.Stats)
		}
	}

	// An SLO nothing satisfies bisects down toward zero from the start.
	slow := &fakeDriver{delay: 2 * time.Millisecond}
	res, err = FindCapacity(context.Background(), slow, CapacityConfig{
		SLO:           SLO{MaxP99: time.Nanosecond, MaxErrorBudget: 0},
		StartRPS:      10,
		MaxRPS:        10,
		TrialDuration: 50 * time.Millisecond,
		Bisections:    2,
		Run: RunConfig{
			Workload:      testWorkload(1),
			ChunkInterval: time.Millisecond,
			IDPrefix:      "cap0",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxSustainableRPS != 0 {
		t.Fatalf("impossible SLO produced capacity %v, want 0", res.MaxSustainableRPS)
	}
	if len(res.Trials) < 3 {
		t.Fatalf("expected bisection trials after the failed seed, got %d", len(res.Trials))
	}
	if res.Trials[0].Sustainable {
		t.Fatal("seed trial should have failed the impossible SLO")
	}
}

func TestFindCapacityValidation(t *testing.T) {
	if _, err := FindCapacity(context.Background(), &fakeDriver{}, CapacityConfig{
		TrialDuration: time.Second,
	}); err == nil {
		t.Fatal("zero StartRPS accepted")
	}
	if _, err := FindCapacity(context.Background(), &fakeDriver{}, CapacityConfig{
		StartRPS: 1,
	}); err == nil {
		t.Fatal("zero TrialDuration accepted")
	}
}
