package loadgen

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cs2p/internal/engine"
	"cs2p/internal/obs"
	"cs2p/internal/trace"
)

// Driver is the slice of the prediction-service client a synthetic session
// drives: register, one observe+predict round trip per chunk, and the
// end-of-playback QoE log. *httpapi.Client implements it directly (JSON v1
// or, after SetWireBinary(true), binary v2), and so does the router-fronted
// client — the harness never talks to anything but the real client stack.
type Driver interface {
	StartSession(id string, f trace.Features, startUnix int64) (engine.StartResponse, error)
	ObserveAndPredict(id string, observedMbps float64, horizon int) (float64, error)
	Log(lg engine.SessionLog) error
}

// RunConfig shapes one load run.
type RunConfig struct {
	// Profile and Duration define the open-loop arrival schedule.
	Profile  Profile
	Duration time.Duration
	// Workload is the session population arrivals replay (features drive
	// cluster routing, per-epoch throughput drives the filter): tracegen
	// output, so chunk count and throughput dynamics follow the paper's
	// session-length and HMM assumptions. Arrival i replays session
	// i mod len(Workload).
	Workload []*trace.Session
	// ChunkInterval is the cadence between chunk round trips — the paper's
	// 6-second epoch scaled down by the harness timescale. Must be > 0.
	ChunkInterval time.Duration
	// MaxChunks caps chunks per session (0 = the workload session's full
	// length).
	MaxChunks int
	// IDPrefix namespaces session ids so concurrent runs (capacity trials)
	// never collide.
	IDPrefix string
	// Clock is injectable for tests; nil means the wall clock.
	Clock Clock
}

func (c *RunConfig) withDefaults() error {
	if len(c.Workload) == 0 {
		return fmt.Errorf("loadgen: run needs a non-empty workload")
	}
	if c.ChunkInterval <= 0 {
		return fmt.Errorf("loadgen: run needs ChunkInterval > 0")
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	if c.IDPrefix == "" {
		c.IDPrefix = "load"
	}
	return nil
}

// Stats summarizes one run. Intended* percentiles score each operation
// against the time the open-loop schedule wanted it to complete from
// (intended-start-to-completion); Service* percentiles are the same
// operations timed closed-loop (send-to-completion) — the number a naive
// harness would report. Under an overloaded target the two diverge: that
// divergence IS the coordinated-omission gap.
type Stats struct {
	Sessions   int64
	Ops        int64
	Errors     int64
	ErrorRate  float64
	Dispatched int
	// MaxDispatchLate is the worst generator-side lateness: how far behind
	// its own schedule the dispatcher ran (harness saturation signal).
	MaxDispatchLate time.Duration

	IntendedP50, IntendedP99, IntendedP999, IntendedMax time.Duration
	ServiceP50, ServiceP99, ServiceP999, ServiceMax     time.Duration
}

// recorder accumulates per-op measurements. Latency distributions ride the
// obs histogram registry (FineLatencyBuckets, the HDR-style log ladder), so
// quantile readout, concurrency safety and /metrics exposition come from the
// same instrument the serving stack already uses; exact maxima are kept in
// atomics alongside because a bucket ladder saturates its tail.
type recorder struct {
	reg      *obs.Registry
	intended *obs.Histogram
	service  *obs.Histogram

	sessions atomic.Int64
	ops      atomic.Int64
	errs     atomic.Int64

	maxIntendedNs   atomic.Int64
	maxServiceNs    atomic.Int64
	maxDispatchLate atomic.Int64
	dispatchedTotal atomic.Int64
}

func newRecorder() *recorder {
	reg := obs.NewRegistry()
	return &recorder{
		reg: reg,
		intended: reg.Histogram("cs2p_loadgen_latency_seconds",
			"Operation latency by accounting mode.", obs.FineLatencyBuckets,
			obs.Labels{"accounting": "intended"}),
		service: reg.Histogram("cs2p_loadgen_latency_seconds",
			"Operation latency by accounting mode.", nil,
			obs.Labels{"accounting": "service"}),
	}
}

// Registry exposes the recorder's obs registry (the CLI mounts it on
// /metrics so a long soak can be scraped live).
func (r *recorder) Registry() *obs.Registry { return r.reg }

func maxNs(a *atomic.Int64, d time.Duration) {
	for {
		cur := a.Load()
		if int64(d) <= cur || a.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// op runs one client call, scoring it against its intended completion base.
func (r *recorder) op(clk Clock, runStart time.Time, intended time.Duration, call func() error) error {
	t0 := clk.Now()
	err := call()
	t1 := clk.Now()
	service := t1.Sub(t0)
	r.service.Observe(service.Seconds())
	maxNs(&r.maxServiceNs, service)
	lat := t1.Sub(runStart) - intended
	if lat < 0 {
		lat = 0
	}
	r.intended.Observe(lat.Seconds())
	maxNs(&r.maxIntendedNs, lat)
	r.ops.Add(1)
	if err != nil {
		r.errs.Add(1)
	}
	return err
}

func (r *recorder) stats() *Stats {
	ops := r.ops.Load()
	errs := r.errs.Load()
	s := &Stats{
		Sessions:        r.sessions.Load(),
		Ops:             ops,
		Errors:          errs,
		Dispatched:      int(r.dispatchedTotal.Load()),
		MaxDispatchLate: time.Duration(r.maxDispatchLate.Load()),
		IntendedP50:     quantileDur(r.intended, 0.50),
		IntendedP99:     quantileDur(r.intended, 0.99),
		IntendedP999:    quantileDur(r.intended, 0.999),
		IntendedMax:     time.Duration(r.maxIntendedNs.Load()),
		ServiceP50:      quantileDur(r.service, 0.50),
		ServiceP99:      quantileDur(r.service, 0.99),
		ServiceP999:     quantileDur(r.service, 0.999),
		ServiceMax:      time.Duration(r.maxServiceNs.Load()),
	}
	if ops > 0 {
		s.ErrorRate = float64(errs) / float64(ops)
	}
	return s
}

func quantileDur(h *obs.Histogram, q float64) time.Duration {
	return time.Duration(math.Round(h.Quantile(q) * 1e9))
}

// Run executes one open-loop load run: the schedule dispatches arrivals,
// each arrival becomes a session goroutine replaying its workload session
// chunk by chunk, and every operation is recorded under both intended-time
// and closed-loop accounting. Run returns once every session has drained
// (sessions outlive the arrival window by design — a session arriving at the
// end of the schedule still plays all its chunks).
func Run(ctx context.Context, d Driver, cfg RunConfig) (*Stats, error) {
	rec := newRecorder()
	return runRecorded(ctx, d, cfg, rec)
}

func runRecorded(ctx context.Context, d Driver, cfg RunConfig, rec *recorder) (*Stats, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	sched, err := NewSchedule(cfg.Profile, cfg.Duration)
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	start := clk.Now()
	var wg sync.WaitGroup
	n, derr := Dispatch(ctx, clk, sched, func(a Arrival) {
		maxNs(&rec.maxDispatchLate, a.Late)
		w := cfg.Workload[a.Index%len(cfg.Workload)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			runSession(ctx, clk, d, rec, start, a, w, &cfg)
		}()
	})
	wg.Wait()
	rec.dispatchedTotal.Add(int64(n))
	stats := rec.stats()
	if derr != nil && ctx.Err() != nil {
		return stats, derr
	}
	return stats, nil
}

// runSession replays one workload session: register at the arrival's
// intended time, then one observe+predict per chunk on the configured
// cadence, then the QoE log. Every op's intended time is fixed up front —
// falling behind (slow target) accumulates into the intended-latency
// histogram instead of stretching the cadence silently.
func runSession(ctx context.Context, clk Clock, d Driver, rec *recorder, start time.Time, a Arrival, w *trace.Session, cfg *RunConfig) {
	rec.sessions.Add(1)
	id := fmt.Sprintf("%s-%07d", cfg.IDPrefix, a.Index)
	if err := rec.op(clk, start, a.Intended, func() error {
		_, err := d.StartSession(id, w.Features, w.StartUnix)
		return err
	}); err != nil {
		// A session that cannot register cannot play; its one failed op is
		// on the books.
		return
	}
	chunks := len(w.Throughput)
	if cfg.MaxChunks > 0 && chunks > cfg.MaxChunks {
		chunks = cfg.MaxChunks
	}
	for k := 0; k < chunks; k++ {
		intended := a.Intended + time.Duration(k+1)*cfg.ChunkInterval
		if wait := start.Add(intended).Sub(clk.Now()); wait > 0 {
			if clk.Sleep(ctx, wait) != nil {
				return
			}
		}
		if ctx.Err() != nil {
			return
		}
		obsMbps := w.Throughput[k]
		_ = rec.op(clk, start, intended, func() error {
			_, err := d.ObserveAndPredict(id, obsMbps, 1)
			return err
		})
	}
	logIntended := a.Intended + time.Duration(chunks+1)*cfg.ChunkInterval
	if wait := start.Add(logIntended).Sub(clk.Now()); wait > 0 {
		if clk.Sleep(ctx, wait) != nil {
			return
		}
	}
	_ = rec.op(clk, start, logIntended, func() error {
		return d.Log(engine.SessionLog{SessionID: id, Strategy: "loadgen"})
	})
}
