package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"cs2p/internal/core"
	"cs2p/internal/engine"
	"cs2p/internal/httpapi"
	"cs2p/internal/obs"
	"cs2p/internal/router"
	"cs2p/internal/trace"
	"cs2p/internal/tracegen"
	"cs2p/internal/video"
)

// SelfOptions shapes an in-process target: a small tracegen-trained model
// served by one real cs2p-server stack (Replicas == 1) or by N replica
// stacks behind the consistent-hash router (Replicas > 1). Self targets
// exist so `make bench-load` and CI can measure the real serving path with
// zero external orchestration — the same reason bench-serve runs in-process.
type SelfOptions struct {
	// Replicas is the serving-tier width (1 = direct server, >1 = that many
	// replicas fronted by the router). 0 means 1.
	Replicas int
	// TrainSessions sizes the tracegen training trace (0 = 300, enough for
	// real clusters at SmallConfig shape without minutes of training).
	TrainSessions int
	// Seed drives the synthetic population.
	Seed int64
	// Shards pins the replica session-store shard count (0 = GOMAXPROCS).
	Shards int
	// MaxLogs bounds each replica's QoE-log ring (0 = engine default).
	MaxLogs int
}

// SelfTarget is a running in-process serving tier.
type SelfTarget struct {
	// URL is the front door (replica or router) the harness drives.
	URL string
	// MetricsURL serves the first replica's obs registry (every replica of
	// a self cluster shares one process, so one registry view covers the
	// soak checks).
	MetricsURL string
	// Service is the first replica's engine service — the direct handle the
	// leak tests use to cross-check gauge math against Logs().
	Service *engine.Service
	// Registry is the serving-side metrics registry behind MetricsURL.
	Registry *obs.Registry

	servers []*http.Server
	lns     []net.Listener
}

// Close tears the tier down (front first, then replicas).
func (t *SelfTarget) Close() {
	for i := len(t.servers) - 1; i >= 0; i-- {
		_ = t.servers[i].Close()
	}
}

// trainConfig is the fast-but-real training shape self targets use: small
// state count and few EM iterations, the same compromise the golden cluster
// test makes.
func trainConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Cluster.MinGroupSize = 10
	cfg.HMM.NStates = 3
	cfg.HMM.MaxIters = 8
	return cfg
}

// workloadConfig derives the tracegen population for a given seed. Sessions
// are capped short (MaxEpochs) so load-run sessions drain in bounded time.
func workloadConfig(seed int64, sessions int) tracegen.Config {
	cfg := tracegen.SmallConfig()
	cfg.Seed = seed
	cfg.Sessions = sessions
	cfg.MeanEpochs = 8
	cfg.MaxEpochs = 24
	return cfg
}

// SyntheticWorkload draws n replayable sessions from the tracegen
// population — the "realistic chunk cadence" source: session lengths follow
// the paper's lognormal, per-epoch throughput follows the cluster HMMs, and
// features route to real clusters on a model trained from the same
// population shape.
func SyntheticWorkload(seed int64, n int) []*trace.Session {
	d, _ := tracegen.Generate(workloadConfig(seed, n))
	return d.Sessions
}

// serve starts an http.Server for h on a fresh loopback port.
func serve(h http.Handler) (*http.Server, net.Listener, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, "", fmt.Errorf("loadgen: listening: %w", err)
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln, "http://" + ln.Addr().String(), nil
}

// StartSelf trains one small model and boots the requested serving tier
// in-process. The first replica's registry carries the engine gauges plus
// the runtime gauges, and is mounted at MetricsURL — the exact contract a
// production soak scrapes off -debug-addr.
func StartSelf(opts SelfOptions) (*SelfTarget, error) {
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	sessions := opts.TrainSessions
	if sessions <= 0 {
		sessions = 300
	}
	cfg := trainConfig()
	d, _ := tracegen.Generate(workloadConfig(opts.Seed, sessions))
	eng, err := core.Train(d, cfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: training self-target model: %w", err)
	}

	t := &SelfTarget{}
	ok := false
	defer func() {
		if !ok {
			t.Close()
		}
	}()

	var urls []string
	for i := 0; i < replicas; i++ {
		svc := engine.NewServiceWithOptions(eng, cfg, video.Default(),
			engine.ServiceOptions{Shards: opts.Shards, MaxLogs: opts.MaxLogs})
		srv := httpapi.NewServer(svc, func(e *core.Engine) *core.ModelStore { return e.Export(d) })
		srv.SetLogf(func(string, ...any) {})
		mux := http.NewServeMux()
		if i == 0 {
			reg := obs.NewRegistry()
			svc.SetMetrics(reg)
			srv.SetMetrics(reg)
			obs.RegisterRuntimeMetrics(reg)
			mux.Handle("/metrics", reg.Handler())
			t.Service = svc
			t.Registry = reg
		}
		mux.Handle("/", srv.Handler())
		hs, ln, url, err := serve(mux)
		if err != nil {
			return nil, err
		}
		t.servers = append(t.servers, hs)
		t.lns = append(t.lns, ln)
		urls = append(urls, url)
		if i == 0 {
			t.MetricsURL = url + "/metrics"
		}
	}

	if replicas == 1 {
		t.URL = urls[0]
		ok = true
		return t, nil
	}

	rt, err := router.New(router.Config{Replicas: urls, Logf: func(string, ...any) {}})
	if err != nil {
		return nil, fmt.Errorf("loadgen: building router: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	rt.ProbeAll(ctx)
	cancel()
	hs, ln, url, err := serve(rt.Handler())
	if err != nil {
		return nil, err
	}
	t.servers = append(t.servers, hs)
	t.lns = append(t.lns, ln)
	t.URL = url
	ok = true
	return t, nil
}
