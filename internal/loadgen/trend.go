package loadgen

import (
	"fmt"
	"os"
)

// CapacityDelta is one scenario's capacity comparison against the baseline.
type CapacityDelta struct {
	Name        string  `json:"name"`
	BaselineRPS float64 `json:"baseline_rps"`
	CurrentRPS  float64 `json:"current_rps"`
	// Change is the fractional movement ((current-baseline)/baseline);
	// negative is a slowdown.
	Change float64 `json:"change"`
	// Regressed marks a slowdown beyond the gate's tolerance.
	Regressed bool `json:"regressed"`
}

// CompareCapacity gates a fresh report against a committed baseline: every
// baseline scenario with a capacity estimate is compared, and a current
// estimate more than maxRegression below it marks the delta regressed.
// Scenarios only the current report has pass freely (a new scenario must
// not need a baseline edit to land), but a baseline scenario missing from
// the current report — or one that lost its capacity search — is an error,
// so the gate cannot be dodged by renaming or trimming scenarios.
func CompareCapacity(baseline, current Report, maxRegression float64) ([]CapacityDelta, error) {
	if maxRegression <= 0 || maxRegression >= 1 {
		return nil, fmt.Errorf("loadgen: max regression must be in (0,1), got %v", maxRegression)
	}
	cur := make(map[string]*RunReport, len(current.Runs))
	for i := range current.Runs {
		cur[current.Runs[i].Name] = &current.Runs[i]
	}
	var deltas []CapacityDelta
	for i := range baseline.Runs {
		base := &baseline.Runs[i]
		if base.Capacity == nil || base.Capacity.MaxSustainableRPS <= 0 {
			continue
		}
		now, ok := cur[base.Name]
		if !ok {
			return nil, fmt.Errorf("loadgen: baseline scenario %q missing from current report", base.Name)
		}
		if now.Capacity == nil {
			return nil, fmt.Errorf("loadgen: scenario %q lost its capacity search (baseline has one)", base.Name)
		}
		d := CapacityDelta{
			Name:        base.Name,
			BaselineRPS: base.Capacity.MaxSustainableRPS,
			CurrentRPS:  now.Capacity.MaxSustainableRPS,
		}
		d.Change = (d.CurrentRPS - d.BaselineRPS) / d.BaselineRPS
		d.Regressed = d.CurrentRPS < d.BaselineRPS*(1-maxRegression)
		deltas = append(deltas, d)
	}
	if len(deltas) == 0 {
		return nil, fmt.Errorf("loadgen: baseline has no capacity results to gate against")
	}
	return deltas, nil
}

// GateCapacityFile loads a committed baseline report and compares the
// current report's capacity against it — the cs2p-loadgen -baseline path.
func GateCapacityFile(baselinePath string, current Report, maxRegression float64) ([]CapacityDelta, error) {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("loadgen: reading baseline: %w", err)
	}
	base, err := ParseReport(b)
	if err != nil {
		return nil, fmt.Errorf("loadgen: baseline %s: %w", baselinePath, err)
	}
	return CompareCapacity(base, current, maxRegression)
}
