package loadgen

import (
	"context"
	"testing"
	"time"

	"cs2p/internal/httpapi"
)

// TestSoakFlatSessionsAndEvictionAccounting is the in-suite short soak: churn
// sessions through a real in-process server, scrape /metrics before and
// after, and assert the leak invariants the production soak relies on —
// the active-session gauge returns to baseline, started == ended, and the
// log-eviction counter accounts exactly for pushed minus retained QoE logs.
func TestSoakFlatSessionsAndEvictionAccounting(t *testing.T) {
	const maxLogs = 8
	target, err := StartSelf(SelfOptions{Replicas: 1, Seed: 3, TrainSessions: 120, MaxLogs: maxLogs})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	cl := httpapi.NewClient(target.URL)
	soak, stats, err := RunSoak(context.Background(), cl, SoakConfig{
		RPS:      100,
		Duration: 300 * time.Millisecond,
		Run: RunConfig{
			Workload:      SyntheticWorkload(3, 20),
			ChunkInterval: 2 * time.Millisecond,
			MaxChunks:     2,
		},
		MetricsURL: target.MetricsURL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 {
		t.Fatalf("soak traffic errored %d/%d ops", stats.Errors, stats.Ops)
	}
	if stats.Sessions < 25 {
		t.Fatalf("soak churned only %d sessions — not enough to exercise eviction", stats.Sessions)
	}

	// Session plane: every synthetic session ends with its QoE log, so the
	// active gauge must be back at baseline and starts must equal ends.
	if !soak.Flat {
		t.Fatalf("session gauge did not return to baseline: %+v", soak)
	}
	if soak.SessionsAfter != soak.SessionsBefore {
		t.Fatalf("leaked sessions: before %v after %v", soak.SessionsBefore, soak.SessionsAfter)
	}
	if soak.StartedDelta != float64(stats.Sessions) || soak.StartedDelta != soak.EndedDelta {
		t.Fatalf("start/end accounting: started %v ended %v, harness sessions %d",
			soak.StartedDelta, soak.EndedDelta, stats.Sessions)
	}

	// Log plane: the ring kept at most maxLogs, so evictions must equal
	// pushed minus retained exactly.
	retained := len(target.Service.Logs())
	if retained > maxLogs {
		t.Fatalf("log ring holds %d > cap %d", retained, maxLogs)
	}
	pushed := int(soak.EndedDelta)
	if want := float64(pushed - retained); soak.LogEvictionsDelta != want {
		t.Fatalf("eviction counter %v, want pushed(%d) - retained(%d) = %v",
			soak.LogEvictionsDelta, pushed, retained, want)
	}

	// Process plane: the runtime gauges scraped into the summary.
	if soak.HeapAfterBytes <= 0 || soak.GoroutinesAfter <= 0 {
		t.Fatalf("runtime gauges missing from scrape: %+v", soak)
	}
}

func TestRunSoakValidation(t *testing.T) {
	cl := httpapi.NewClient("http://127.0.0.1:0")
	if _, _, err := RunSoak(context.Background(), cl, SoakConfig{
		Duration: time.Second, MetricsURL: "http://127.0.0.1:0/metrics",
	}); err == nil {
		t.Fatal("zero RPS accepted")
	}
	if _, _, err := RunSoak(context.Background(), cl, SoakConfig{
		RPS: 1, Duration: time.Second,
	}); err == nil {
		t.Fatal("missing MetricsURL accepted")
	}
	// A dead scrape endpoint fails fast, before any load is generated.
	if _, _, err := RunSoak(context.Background(), cl, SoakConfig{
		RPS: 1, Duration: time.Second, MetricsURL: "http://127.0.0.1:1/metrics",
		Run: RunConfig{Workload: SyntheticWorkload(1, 1), ChunkInterval: time.Millisecond},
	}); err == nil {
		t.Fatal("unreachable metrics endpoint accepted")
	}
}
