package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fixedReport builds a fully-populated report from pinned numbers — the
// golden-shape fixture.
func fixedReport() Report {
	run := RunReport{
		Name:              "direct",
		Mode:              "constant",
		Wire:              "json",
		DurationSeconds:   30,
		Sessions:          600,
		Ops:               6600,
		Errors:            3,
		MaxDispatchLateMs: 1.25,
		IntendedLatency:   LatencySummary{P50Ms: 1.1, P99Ms: 8.4, P999Ms: 15.2, MaxMs: 21.7},
		ServiceLatency:    LatencySummary{P50Ms: 0.9, P99Ms: 4.2, P999Ms: 7.8, MaxMs: 12.3},
		ErrorBudget:       ErrorBudget{Budget: 0.01, ErrorRate: 0.000454, Consumed: 0.0454},
		RequestsByPath:    map[string]int64{"/session/start": 600, "/session/observe": 5400, "/session/log": 600},
	}
	run.Capacity = &CapacityReport{
		MaxSustainableRPS: 48,
		SLOP99Ms:          1000,
		Trials: []TrialReport{
			{RPS: 20, Sustainable: true, IntendedP99: 6.1, ErrorRate: 0},
			{RPS: 40, Sustainable: true, IntendedP99: 9.7, ErrorRate: 0},
			{RPS: 80, Sustainable: false, IntendedP99: 1400, ErrorRate: 0.02},
			{RPS: 60, Sustainable: false, IntendedP99: 1100, ErrorRate: 0.004},
			{RPS: 50, Sustainable: false, IntendedP99: 1020, ErrorRate: 0.001},
			{RPS: 45, Sustainable: true, IntendedP99: 400, ErrorRate: 0},
			{RPS: 48, Sustainable: true, IntendedP99: 700, ErrorRate: 0},
		},
	}
	run.Soak = &SoakSummary{
		SessionsBefore: 0, SessionsAfter: 0,
		StartedDelta: 300, EndedDelta: 300, LogEvictionsDelta: 292,
		HeapBeforeBytes: 7340032, HeapAfterBytes: 7602176,
		GoroutinesBefore: 12, GoroutinesAfter: 12,
		Flat: true,
	}
	return NewReport(run)
}

// TestReportGoldenShape pins BENCH_load.json byte for byte. If this fails
// because the schema deliberately changed, regenerate the golden
// (UPDATE_GOLDEN=1 go test -run TestReportGoldenShape) AND bump
// ReportSchemaVersion.
func TestReportGoldenShape(t *testing.T) {
	got, err := fixedReport().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "bench_load_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (set UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("BENCH_load.json shape drifted from golden.\nThis is a schema change: bump "+
			"ReportSchemaVersion and regenerate with UPDATE_GOLDEN=1.\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The golden document must round-trip through the strict parser.
	r, err := ParseReport(want)
	if err != nil {
		t.Fatalf("golden does not parse: %v", err)
	}
	if len(r.Runs) != 1 || r.Runs[0].Capacity.MaxSustainableRPS != 48 {
		t.Fatalf("golden round-trip lost data: %+v", r)
	}
}

func TestParseReportRejectsCorruption(t *testing.T) {
	valid, err := fixedReport().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(from, to string) []byte {
		s := strings.Replace(string(valid), from, to, 1)
		if s == string(valid) {
			t.Fatalf("corruption %q -> %q did not apply", from, to)
		}
		return []byte(s)
	}
	cases := []struct {
		name string
		doc  []byte
	}{
		{"empty", []byte("")},
		{"not json", []byte("schema_version: 1\n")},
		{"trailing data", append(append([]byte{}, valid...), []byte("{}")...)},
		{"unknown field", corrupt(`"schema_version"`, `"schema_verzion"`)},
		{"future schema version", corrupt(`"schema_version": 1`, `"schema_version": 2`)},
		{"no runs", []byte(`{"schema_version": 1, "generated_by": "x", "runs": []}` + "\n")},
		{"missing name", corrupt(`"name": "direct"`, `"name": ""`)},
		{"unknown mode", corrupt(`"mode": "constant"`, `"mode": "sawtooth"`)},
		{"unknown wire", corrupt(`"wire": "json"`, `"wire": "grpc"`)},
		{"errors exceed ops", corrupt(`"errors": 3`, `"errors": 7000`)},
		{"error rate out of range", corrupt(`"error_rate": 0.000454`, `"error_rate": 1.5`)},
		{"non-monotone quantiles", corrupt(`"p999_ms": 15.2`, `"p999_ms": 0.5`)},
		{"negative capacity", corrupt(`"max_sustainable_rps": 48`, `"max_sustainable_rps": -1`)},
	}
	for _, tc := range cases {
		if _, err := ParseReport(tc.doc); err == nil {
			t.Errorf("%s: corrupted document accepted", tc.name)
		}
	}
	// Sanity: the uncorrupted document still parses.
	if _, err := ParseReport(valid); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestReportWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	rep := fixedReport()
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(b), "}\n") {
		t.Fatal("report file missing trailing newline")
	}
	got, err := ParseReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.GeneratedBy != "cs2p-loadgen" || got.Runs[0].Ops != 6600 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestBuildRunReport(t *testing.T) {
	stats := &Stats{
		Sessions: 5, Ops: 50, Errors: 1, ErrorRate: 0.02,
		MaxDispatchLate: 3 * time.Millisecond,
		IntendedP50:     time.Millisecond, IntendedP99: 4 * time.Millisecond,
		IntendedP999: 9 * time.Millisecond, IntendedMax: 11 * time.Millisecond,
		ServiceP50: time.Millisecond, ServiceP99: 2 * time.Millisecond,
		ServiceP999: 3 * time.Millisecond, ServiceMax: 4 * time.Millisecond,
	}
	cfg := RunConfig{Profile: Profile{Mode: ModeBurst}, Duration: 2 * time.Second}
	rr := BuildRunReport("burst-run", cfg, "binary", SLO{MaxP99: time.Second, MaxErrorBudget: 0.04}, stats)
	if rr.Mode != "burst" || rr.Wire != "binary" || rr.DurationSeconds != 2 {
		t.Fatalf("header mismatch: %+v", rr)
	}
	if rr.ErrorBudget.Consumed != 0.5 {
		t.Fatalf("budget consumed %v, want 0.5 (2%% rate against 4%% budget)", rr.ErrorBudget.Consumed)
	}
	if rr.IntendedLatency.P99Ms != 4 || rr.ServiceLatency.MaxMs != 4 {
		t.Fatalf("latency conversion mismatch: %+v", rr)
	}
	if err := rr.validate(); err != nil {
		t.Fatalf("built report row invalid: %v", err)
	}
}
