package loadgen

import (
	"context"
	"fmt"
	"time"
)

// SLO is the sustainability criterion a capacity trial is judged against:
// intended-time p99 at or under MaxP99 and error rate within the budget.
// Judging on *intended* latency is the point — a target that "serves every
// request in 1ms" while its queue grows without bound is not sustaining the
// rate, and only intended-time accounting shows that.
type SLO struct {
	MaxP99         time.Duration
	MaxErrorBudget float64
}

// DefaultSLO is the capacity search's default criterion: p99 within one
// second of intent, at most 1% errors.
func DefaultSLO() SLO {
	return SLO{MaxP99: time.Second, MaxErrorBudget: 0.01}
}

// Trial is one constant-rate probe of the capacity search.
type Trial struct {
	RPS         float64
	Sustainable bool
	Stats       *Stats
}

// CapacityConfig shapes a FindCapacity search.
type CapacityConfig struct {
	SLO SLO
	// StartRPS seeds the doubling phase (must be > 0).
	StartRPS float64
	// MaxRPS caps the search; 0 means 1<<16 (a runaway guard, not a
	// realistic single-box rate for this protocol).
	MaxRPS float64
	// TrialDuration is the arrival window of each constant-rate probe.
	TrialDuration time.Duration
	// Bisections bounds the refinement phase after the doubling phase
	// brackets the capacity (default 4 → final answer within ~6% of the
	// bracket width).
	Bisections int
	// Run carries the workload, cadence, and clock shared by every trial;
	// its Profile/Duration are overwritten per trial.
	Run RunConfig
}

// CapacityResult is the search outcome: the highest probed rate that met the
// SLO, with every trial retained for the report.
type CapacityResult struct {
	MaxSustainableRPS float64
	Trials            []Trial
}

// FindCapacity estimates the maximum arrival rate the target sustains under
// the SLO: double from StartRPS until a trial fails (or MaxRPS), then binary
// search the bracket. Each trial is a fresh constant-rate open-loop run with
// trial-scoped session ids, so trials never collide and completed sessions
// drain server-side between probes.
func FindCapacity(ctx context.Context, d Driver, cfg CapacityConfig) (CapacityResult, error) {
	if cfg.StartRPS <= 0 {
		return CapacityResult{}, fmt.Errorf("loadgen: capacity search needs StartRPS > 0")
	}
	if cfg.TrialDuration <= 0 {
		return CapacityResult{}, fmt.Errorf("loadgen: capacity search needs TrialDuration > 0")
	}
	if cfg.MaxRPS <= 0 {
		cfg.MaxRPS = 1 << 16
	}
	if cfg.Bisections <= 0 {
		cfg.Bisections = 4
	}
	if cfg.SLO.MaxP99 <= 0 {
		cfg.SLO = DefaultSLO()
	}
	var res CapacityResult
	trial := func(rps float64) (bool, error) {
		rc := cfg.Run
		rc.Profile = Profile{Mode: ModeConstant, StartRPS: rps}
		rc.Duration = cfg.TrialDuration
		rc.IDPrefix = fmt.Sprintf("%s-cap%d-r%d", cfg.Run.IDPrefix, len(res.Trials), int(rps))
		stats, err := Run(ctx, d, rc)
		if err != nil {
			return false, err
		}
		ok := stats.IntendedP99 <= cfg.SLO.MaxP99 && stats.ErrorRate <= cfg.SLO.MaxErrorBudget
		res.Trials = append(res.Trials, Trial{RPS: rps, Sustainable: ok, Stats: stats})
		return ok, nil
	}

	// Doubling phase: find the first unsustainable rate.
	lo, hi := 0.0, 0.0
	for rps := cfg.StartRPS; ; rps *= 2 {
		if rps > cfg.MaxRPS {
			rps = cfg.MaxRPS
		}
		ok, err := trial(rps)
		if err != nil {
			return res, err
		}
		if ok {
			lo = rps
			if rps >= cfg.MaxRPS {
				// Sustained the cap; the cap is the answer.
				res.MaxSustainableRPS = lo
				return res, nil
			}
			continue
		}
		hi = rps
		break
	}
	// Bisection phase: shrink [lo, hi) around the capacity knee. lo == 0
	// (even StartRPS failed) bisects down toward zero.
	for i := 0; i < cfg.Bisections; i++ {
		mid := (lo + hi) / 2
		if mid <= 0 || mid == lo || mid == hi {
			break
		}
		ok, err := trial(mid)
		if err != nil {
			return res, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.MaxSustainableRPS = lo
	return res, nil
}
