package loadgen

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock advances instantly through sleeps: scheduler tests assert exact
// intended timestamps and dispatch lateness with zero real sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d > 0 {
		f.advance(d)
	}
	return nil
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func mustArrivals(t *testing.T, p Profile, dur time.Duration) []time.Duration {
	t.Helper()
	got, err := Arrivals(p, dur)
	if err != nil {
		t.Fatalf("Arrivals(%+v, %v): %v", p, dur, err)
	}
	return got
}

func assertArrivals(t *testing.T, got, want []time.Duration) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("arrival count = %d, want %d (got %v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestConstantArrivalsExact(t *testing.T) {
	got := mustArrivals(t, Profile{Mode: ModeConstant, StartRPS: 4}, time.Second)
	assertArrivals(t, got, []time.Duration{
		0, 250 * time.Millisecond, 500 * time.Millisecond, 750 * time.Millisecond,
	})

	// 2s at 5 rps: exactly 10 arrivals, 200ms apart, none at or past the
	// window end.
	got = mustArrivals(t, Profile{Mode: ModeConstant, StartRPS: 5}, 2*time.Second)
	if len(got) != 10 {
		t.Fatalf("5 rps over 2s: %d arrivals, want 10", len(got))
	}
	for i, d := range got {
		if want := time.Duration(i) * 200 * time.Millisecond; d != want {
			t.Fatalf("arrival %d = %v, want %v", i, d, want)
		}
	}
}

func TestStepArrivalsExact(t *testing.T) {
	// Slot 0 at 2 rps, slot 1 at 4 rps.
	p := Profile{Mode: ModeStep, StartRPS: 2, StepRPS: 2, SlotEvery: time.Second}
	got := mustArrivals(t, p, 2*time.Second)
	assertArrivals(t, got, []time.Duration{
		0, 500 * time.Millisecond,
		time.Second, 1250 * time.Millisecond, 1500 * time.Millisecond, 1750 * time.Millisecond,
	})

	// EndRPS clamps the staircase: slot 1 would be 10 rps but clamps to 4.
	p = Profile{Mode: ModeStep, StartRPS: 2, StepRPS: 8, SlotEvery: time.Second, EndRPS: 4}
	got = mustArrivals(t, p, 2*time.Second)
	assertArrivals(t, got, []time.Duration{
		0, 500 * time.Millisecond,
		time.Second, 1250 * time.Millisecond, 1500 * time.Millisecond, 1750 * time.Millisecond,
	})
}

func TestSweepArrivalsExact(t *testing.T) {
	// Ramp 0 -> 4 rps over 2s: area(t) = t^2, so arrival n lands at sqrt(n).
	p := Profile{Mode: ModeSweep, StartRPS: 0, EndRPS: 4}
	got := mustArrivals(t, p, 2*time.Second)
	want := []time.Duration{
		0,
		time.Second,
		time.Duration(math.Round(math.Sqrt(2) * 1e9)),
		time.Duration(math.Round(math.Sqrt(3) * 1e9)),
	}
	assertArrivals(t, got, want)

	// The ramp accelerates: consecutive gaps must strictly shrink.
	for i := 2; i < len(got); i++ {
		if got[i]-got[i-1] >= got[i-1]-got[i-2] {
			t.Fatalf("sweep gaps not shrinking: %v", got)
		}
	}
}

func TestBurstArrivalsExact(t *testing.T) {
	// 4 rps bursts of 500ms opening every 1s, silence between: the integral
	// reaches 2 exactly at the burst edge, so the window edge itself fires.
	p := Profile{Mode: ModeBurst, StartRPS: 0, BurstRPS: 4,
		BurstEvery: time.Second, BurstLen: 500 * time.Millisecond}
	got := mustArrivals(t, p, 2*time.Second)
	assertArrivals(t, got, []time.Duration{
		0, 250 * time.Millisecond, 500 * time.Millisecond,
		1250 * time.Millisecond, 1500 * time.Millisecond,
	})

	// With a non-zero floor rate the silent stretch fills in.
	p.StartRPS = 2
	got = mustArrivals(t, p, 2*time.Second)
	assertArrivals(t, got, []time.Duration{
		0, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 1250 * time.Millisecond, 1500 * time.Millisecond,
	})
}

func TestProfileValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
		dur  time.Duration
	}{
		{"zero duration", Profile{Mode: ModeConstant, StartRPS: 1}, 0},
		{"negative rate", Profile{Mode: ModeConstant, StartRPS: -1}, time.Second},
		{"constant zero rps", Profile{Mode: ModeConstant}, time.Second},
		{"unknown mode", Profile{Mode: "sawtooth", StartRPS: 1}, time.Second},
		{"step missing slot", Profile{Mode: ModeStep, StartRPS: 1, StepRPS: 1}, time.Second},
		{"step zero step", Profile{Mode: ModeStep, StartRPS: 1, SlotEvery: time.Second}, time.Second},
		{"burst longer than period", Profile{Mode: ModeBurst, BurstRPS: 1,
			BurstEvery: time.Second, BurstLen: 2 * time.Second}, 3 * time.Second},
		{"burst zero rate", Profile{Mode: ModeBurst,
			BurstEvery: time.Second, BurstLen: time.Second}, 3 * time.Second},
	}
	for _, tc := range cases {
		if _, err := Arrivals(tc.p, tc.dur); err == nil {
			t.Errorf("%s: want error, got none", tc.name)
		}
	}
}

func TestScheduleStreamsMatchArrivals(t *testing.T) {
	p := Profile{Mode: ModeStep, StartRPS: 3, StepRPS: 5, SlotEvery: 700 * time.Millisecond}
	all := mustArrivals(t, p, 3*time.Second)
	s, err := NewSchedule(p, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range all {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("Next %d = (%v, %v), want (%v, true)", i, got, ok, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("schedule yielded past its materialized arrivals")
	}
	if s.Emitted() != len(all) {
		t.Fatalf("Emitted = %d, want %d", s.Emitted(), len(all))
	}
}

func TestDispatchOnTime(t *testing.T) {
	clk := newFakeClock()
	s, err := NewSchedule(Profile{Mode: ModeConstant, StartRPS: 10}, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	var got []Arrival
	var at []time.Duration
	n, err := Dispatch(context.Background(), clk, s, func(a Arrival) {
		got = append(got, a)
		at = append(at, clk.Now().Sub(start))
	})
	if err != nil || n != 5 {
		t.Fatalf("Dispatch = (%d, %v), want (5, nil)", n, err)
	}
	for i, a := range got {
		want := time.Duration(i) * 100 * time.Millisecond
		if a.Index != i || a.Intended != want || a.Late != 0 {
			t.Fatalf("arrival %d = %+v, want index %d intended %v late 0", i, a, i, want)
		}
		if at[i] != want {
			t.Fatalf("arrival %d dispatched at %v, want %v", i, at[i], want)
		}
	}
}

// TestDispatchBacklog pins the open-loop contract: when the dispatch callback
// itself runs slow (250ms per 100ms slot), later arrivals fire late — with
// exactly the accumulating lateness the schedule implies — but their intended
// times never move and no arrival is dropped.
func TestDispatchBacklog(t *testing.T) {
	clk := newFakeClock()
	s, err := NewSchedule(Profile{Mode: ModeConstant, StartRPS: 10}, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var got []Arrival
	n, err := Dispatch(context.Background(), clk, s, func(a Arrival) {
		got = append(got, a)
		clk.advance(250 * time.Millisecond) // slow consumer
	})
	if err != nil || n != 5 {
		t.Fatalf("Dispatch = (%d, %v), want (5, nil)", n, err)
	}
	wantLate := []time.Duration{0, 150 * time.Millisecond, 300 * time.Millisecond,
		450 * time.Millisecond, 600 * time.Millisecond}
	for i, a := range got {
		if a.Intended != time.Duration(i)*100*time.Millisecond {
			t.Fatalf("backlog rewrote intended time of arrival %d: %v", i, a.Intended)
		}
		if a.Late != wantLate[i] {
			t.Fatalf("arrival %d late = %v, want %v", i, a.Late, wantLate[i])
		}
	}
}

func TestDispatchCancel(t *testing.T) {
	clk := newFakeClock()
	s, err := NewSchedule(Profile{Mode: ModeConstant, StartRPS: 10}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n, derr := Dispatch(ctx, clk, s, func(a Arrival) {
		if a.Index == 2 {
			cancel()
		}
	})
	if derr == nil || n != 3 {
		t.Fatalf("Dispatch = (%d, %v), want 3 arrivals and a cancellation error", n, derr)
	}
}
