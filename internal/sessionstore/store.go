// Package sessionstore holds the serving core's per-session state behind a
// sharded, independently locked table. CS2P's online stage is per-session
// state machines (one cluster lookup plus one HMM filter each, §5), so the
// session table is embarrassingly shardable: requests for different sessions
// never need to contend, and an idle-session GC sweep never needs to stop
// the world. The store also owns the bounded completed-session log rings,
// one per shard, so end-of-playback QoE reports ride the same locks.
package sessionstore

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Store is the session-table abstraction the prediction engine programs
// against: a string-keyed table of per-session values S with idle tracking,
// plus a bounded ring of completed-session logs L. Implementations must be
// safe for concurrent use.
type Store[S, L any] interface {
	// Put inserts or replaces the session and stamps its last-seen time,
	// reporting whether an existing entry was replaced.
	Put(id string, v *S, now time.Time) (replaced bool)
	// Get fetches a session and refreshes its idle clock.
	Get(id string, now time.Time) (*S, bool)
	// GetBytes is Get keyed by raw bytes — the binary wire path's lookup.
	// Implementations must not retain id and must not allocate for the
	// lookup (the compiler elides the string conversion inside a direct
	// map index), so a decoded frame's id can alias a pooled buffer.
	GetBytes(id []byte, now time.Time) (*S, bool)
	// Delete forgets a session, reporting whether it existed.
	Delete(id string) bool
	// Len returns the number of live sessions.
	Len() int
	// Shards returns the shard count (1 for an unsharded implementation).
	Shards() int
	// ShardSizes returns the per-shard session counts, index-aligned with
	// shard ids (the observability layer exports them as a gauge vector).
	ShardSizes() []int
	// PushLog appends a completed-session log to the ring of the shard that
	// owned the session, reporting whether an older entry was evicted.
	PushLog(id string, lg L) (evicted bool)
	// Logs returns the retained logs globally oldest-first (merged across
	// shards by push sequence number).
	Logs() []L
	// SetMaxLogs re-bounds the total log capacity across all shards,
	// keeping the newest entries, and returns how many a shrink evicted.
	SetMaxLogs(max int) (evicted int)
	// GC drops sessions idle since before cut, sweeping one shard at a time
	// so requests to other shards never wait, and returns how many were
	// removed.
	GC(cut time.Time) int
}

// NumShards resolves a shard-count request: n <= 0 scales to GOMAXPROCS,
// anything else rounds up to the next power of two (so the shard index is a
// mask of the hash, not a modulo).
func NumShards(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return nextPow2(n)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// entry wraps one session with its idle clock. lastSeen is guarded by the
// owning shard's mutex, not by the session's own lock: touching it must not
// serialize against a long-running filter update.
type entry[S any] struct {
	val      *S
	lastSeen time.Time
}

// shard is one lock domain: a slice of the session table plus the log ring
// for sessions that hash here.
type shard[S, L any] struct {
	mu   sync.Mutex
	m    map[string]*entry[S]
	logs ring[L]
}

// Sharded is the power-of-two-sharded Store implementation. Session ids are
// placed by FNV-1a; per-shard mutexes mean two sessions on different shards
// never contend, and Len is an atomic counter so the active-sessions gauge
// costs no lock at all.
type Sharded[S, L any] struct {
	shards []shard[S, L]
	mask   uint32
	count  atomic.Int64
	logSeq atomic.Uint64
}

// New builds a store with NumShards(shards) shards and a total log capacity
// of maxLogs entries, distributed across the per-shard rings.
func New[S, L any](shards, maxLogs int) *Sharded[S, L] {
	n := NumShards(shards)
	s := &Sharded[S, L]{
		shards: make([]shard[S, L], n),
		mask:   uint32(n - 1),
	}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*entry[S])
	}
	s.setMaxLogsLocked(maxLogs)
	return s
}

// fnv32a is FNV-1a over the session id — cheap, allocation-free, and well
// mixed for the short human-ish ids players send.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// fnv32aBytes is fnv32a over a byte slice. Kept separate (rather than
// converting) so the wire path hashes without a string allocation.
func fnv32aBytes(b []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= prime32
	}
	return h
}

// ShardFor returns the shard index a session id hashes to.
func (s *Sharded[S, L]) ShardFor(id string) int {
	return int(fnv32a(id) & s.mask)
}

// Shards implements Store.
func (s *Sharded[S, L]) Shards() int { return len(s.shards) }

// Put implements Store.
func (s *Sharded[S, L]) Put(id string, v *S, now time.Time) (replaced bool) {
	sh := &s.shards[s.ShardFor(id)]
	sh.mu.Lock()
	_, replaced = sh.m[id]
	sh.m[id] = &entry[S]{val: v, lastSeen: now}
	sh.mu.Unlock()
	if !replaced {
		s.count.Add(1)
	}
	return replaced
}

// Get implements Store.
func (s *Sharded[S, L]) Get(id string, now time.Time) (*S, bool) {
	sh := &s.shards[s.ShardFor(id)]
	sh.mu.Lock()
	e, ok := sh.m[id]
	if ok {
		e.lastSeen = now
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.val, true
}

// GetBytes implements Store: the same lookup as Get but keyed by raw bytes,
// allocation-free. The string conversions sit directly in the map index
// expressions, which the compiler compiles without materializing a string.
func (s *Sharded[S, L]) GetBytes(id []byte, now time.Time) (*S, bool) {
	sh := &s.shards[fnv32aBytes(id)&s.mask]
	sh.mu.Lock()
	e, ok := sh.m[string(id)]
	if ok {
		e.lastSeen = now
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.val, true
}

// Delete implements Store.
func (s *Sharded[S, L]) Delete(id string) bool {
	sh := &s.shards[s.ShardFor(id)]
	sh.mu.Lock()
	_, ok := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	if ok {
		s.count.Add(-1)
	}
	return ok
}

// Len implements Store.
func (s *Sharded[S, L]) Len() int { return int(s.count.Load()) }

// ShardSizes implements Store.
func (s *Sharded[S, L]) ShardSizes() []int {
	sizes := make([]int, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sizes[i] = len(sh.m)
		sh.mu.Unlock()
	}
	return sizes
}

// PushLog implements Store. The log lands on the ring of the shard the
// session id hashes to, stamped with a global sequence number so Logs can
// merge the rings back into push order.
func (s *Sharded[S, L]) PushLog(id string, lg L) (evicted bool) {
	seq := s.logSeq.Add(1)
	sh := &s.shards[s.ShardFor(id)]
	sh.mu.Lock()
	evicted = sh.logs.push(seq, lg)
	sh.mu.Unlock()
	return evicted
}

// Logs implements Store: the per-shard rings are snapshotted one lock at a
// time and merged by sequence number, so the result is globally oldest-first
// exactly as a single ring would report it.
func (s *Sharded[S, L]) Logs() []L {
	var all []seqEntry[L]
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		all = append(all, sh.logs.snapshot()...)
		sh.mu.Unlock()
	}
	sortBySeq(all)
	out := make([]L, len(all))
	for i, e := range all {
		out[i] = e.val
	}
	return out
}

// SetMaxLogs implements Store. The total capacity is split across shards
// (floor plus one for the first max%n shards, so the sum is exactly max).
func (s *Sharded[S, L]) SetMaxLogs(max int) (evicted int) {
	return s.setMaxLogsLocked(max)
}

func (s *Sharded[S, L]) setMaxLogsLocked(max int) (evicted int) {
	if max < 0 {
		max = 0
	}
	n := len(s.shards)
	base, extra := max/n, max%n
	for i := range s.shards {
		cap := base
		if i < extra {
			cap++
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		evicted += sh.logs.resize(cap)
		sh.mu.Unlock()
	}
	return evicted
}

// GC implements Store: one shard is locked, swept, and released at a time,
// so a sweep never blocks the whole table the way the old global-mutex
// service did.
func (s *Sharded[S, L]) GC(cut time.Time) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, e := range sh.m {
			if e.lastSeen.Before(cut) {
				delete(sh.m, id)
				n++
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		s.count.Add(int64(-n))
	}
	return n
}

var _ Store[struct{}, struct{}] = (*Sharded[struct{}, struct{}])(nil)
