package sessionstore

import "sort"

// seqEntry carries one retained log with the global push sequence number
// that lets the per-shard rings merge back into push order.
type seqEntry[L any] struct {
	seq uint64
	val L
}

// ring is a fixed-capacity ring buffer of completed-session logs for one
// shard. Retaining every QoE report in a long-lived process is an unbounded
// leak, so only the most recent max entries survive; eviction is strictly
// oldest-first. Callers hold the owning shard's mutex.
type ring[L any] struct {
	buf  []seqEntry[L]
	next int // index the next push writes
	full bool
	max  int
}

// push appends a log, evicting the oldest entry once full. A zero-capacity
// ring (a shard's share of a tiny total budget) drops the entry immediately
// and reports it evicted. It reports whether an entry was evicted, so the
// service can count evictions.
func (r *ring[L]) push(seq uint64, lg L) (evicted bool) {
	if r.max <= 0 {
		return true
	}
	if r.buf == nil {
		// Grow lazily: most test services never approach the cap.
		r.buf = make([]seqEntry[L], 0, min(r.max, 64))
	}
	e := seqEntry[L]{seq: seq, val: lg}
	if len(r.buf) < r.max {
		r.buf = append(r.buf, e)
		r.next = len(r.buf) % r.max
		r.full = len(r.buf) == r.max
		return false
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % r.max
	r.full = true
	return true
}

// snapshot returns the retained logs oldest-first.
func (r *ring[L]) snapshot() []seqEntry[L] {
	if !r.full {
		return append([]seqEntry[L](nil), r.buf...)
	}
	out := make([]seqEntry[L], 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// resize changes the capacity, keeping the newest entries. It returns how
// many entries a shrink evicted.
func (r *ring[L]) resize(max int) (evicted int) {
	if max < 0 {
		max = 0
	}
	if max == r.max {
		return 0
	}
	cur := r.snapshot()
	if len(cur) > max {
		evicted = len(cur) - max
		cur = cur[len(cur)-max:]
	}
	r.max = max
	if max == 0 {
		r.buf, r.next, r.full = nil, 0, false
		return evicted
	}
	r.buf = cur
	r.next = len(cur) % max
	r.full = len(cur) == max
	return evicted
}

// sortBySeq orders merged shard snapshots by push sequence (stable push
// order across shards).
func sortBySeq[L any](s []seqEntry[L]) {
	sort.Slice(s, func(i, j int) bool { return s[i].seq < s[j].seq })
}
