package sessionstore

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

type sess struct{ n int }

type lg struct {
	id  string
	seq int
}

func at(sec int) time.Time { return time.Unix(int64(sec), 0) }

func TestNumShards(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}, {17, 32},
	}
	for _, c := range cases {
		if got := NumShards(c.in); got != c.want {
			t.Errorf("NumShards(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// 0 scales to GOMAXPROCS; whatever that is, it must be a power of two.
	n := NumShards(0)
	if n < 1 || n&(n-1) != 0 {
		t.Errorf("NumShards(0) = %d, want a power of two", n)
	}
}

func TestShardForDeterministicAndMasked(t *testing.T) {
	s := New[sess, lg](16, 64)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("session-%d", i)
		sh := s.ShardFor(id)
		if sh < 0 || sh >= s.Shards() {
			t.Fatalf("shard %d out of range [0,%d)", sh, s.Shards())
		}
		if sh != s.ShardFor(id) {
			t.Fatalf("ShardFor(%q) not deterministic", id)
		}
	}
	// FNV-1a must actually spread short ids: with 200 ids over 16 shards no
	// shard should be empty (each expects ~12).
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		seen[s.ShardFor(fmt.Sprintf("session-%d", i))] = true
	}
	if len(seen) != 16 {
		t.Errorf("200 ids landed on only %d/16 shards", len(seen))
	}
}

func TestPutGetDeleteLen(t *testing.T) {
	s := New[sess, lg](4, 16)
	if replaced := s.Put("a", &sess{1}, at(1)); replaced {
		t.Error("first Put reported replaced")
	}
	if replaced := s.Put("a", &sess{2}, at(2)); !replaced {
		t.Error("second Put did not report replaced")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 after replace", s.Len())
	}
	v, ok := s.Get("a", at(3))
	if !ok || v.n != 2 {
		t.Errorf("Get = %+v, %v", v, ok)
	}
	if _, ok := s.Get("missing", at(3)); ok {
		t.Error("Get on a missing id reported ok")
	}
	if !s.Delete("a") || s.Delete("a") {
		t.Error("Delete should report true then false")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after delete", s.Len())
	}
}

func TestShardSizesSumToLen(t *testing.T) {
	s := New[sess, lg](8, 16)
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("id-%d", i), &sess{i}, at(i))
	}
	sizes := s.ShardSizes()
	if len(sizes) != 8 {
		t.Fatalf("ShardSizes len = %d", len(sizes))
	}
	sum := 0
	for _, n := range sizes {
		sum += n
	}
	if sum != s.Len() || sum != 50 {
		t.Errorf("shard sizes sum %d, Len %d, want 50", sum, s.Len())
	}
}

// TestGCSweepsIdleOnly pins the per-shard GC contract: only entries whose
// last-seen time predates the cut are dropped, and a Get refreshes the
// clock.
func TestGCSweepsIdleOnly(t *testing.T) {
	s := New[sess, lg](4, 16)
	s.Put("old", &sess{}, at(10))
	s.Put("fresh", &sess{}, at(10))
	s.Get("fresh", at(100)) // touch
	if n := s.GC(at(50)); n != 1 {
		t.Fatalf("GC dropped %d, want 1", n)
	}
	if _, ok := s.Get("old", at(101)); ok {
		t.Error("idle entry survived GC")
	}
	if _, ok := s.Get("fresh", at(101)); !ok {
		t.Error("touched entry evicted")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

// TestLogsMergeInPushOrder pins the sequence merge: regardless of which
// shard each ring lives on, Logs returns push order — exactly what a single
// global ring reported before sharding.
func TestLogsMergeInPushOrder(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		s := New[sess, lg](shards, 64)
		for i := 0; i < 40; i++ {
			s.PushLog(fmt.Sprintf("id-%d", i), lg{id: fmt.Sprintf("id-%d", i), seq: i})
		}
		logs := s.Logs()
		if len(logs) != 40 {
			t.Fatalf("shards=%d: retained %d logs, want 40", shards, len(logs))
		}
		for i, l := range logs {
			if l.seq != i {
				t.Fatalf("shards=%d: logs[%d].seq = %d, want %d (push order violated)", shards, i, l.seq, i)
			}
		}
	}
}

// TestLogCapacitySplit pins the capacity arithmetic: the per-shard caps sum
// to exactly the requested total, with the remainder on the low shards.
func TestLogCapacitySplit(t *testing.T) {
	s := New[sess, lg](4, 10) // caps 3,3,2,2
	caps := 0
	for i := range s.shards {
		caps += s.shards[i].logs.max
	}
	if caps != 10 {
		t.Errorf("per-shard caps sum to %d, want 10", caps)
	}
	if s.shards[0].logs.max != 3 || s.shards[3].logs.max != 2 {
		t.Errorf("remainder split wrong: %d, %d", s.shards[0].logs.max, s.shards[3].logs.max)
	}
}

// TestSingleShardEvictionMatchesLegacyRing: at one shard the store must
// reproduce the old global logRing exactly — oldest-first eviction, newest
// retained, resize keeps the tail.
func TestSingleShardEvictionMatchesLegacyRing(t *testing.T) {
	s := New[sess, lg](1, 3)
	evictions := 0
	for i := 0; i < 5; i++ {
		if s.PushLog(fmt.Sprint(i), lg{seq: i}) {
			evictions++
		}
	}
	if evictions != 2 {
		t.Errorf("evictions = %d, want 2", evictions)
	}
	logs := s.Logs()
	if len(logs) != 3 || logs[0].seq != 2 || logs[2].seq != 4 {
		t.Errorf("retained %v, want seqs 2..4", logs)
	}
	// Shrink keeps the newest, grow preserves order.
	if ev := s.SetMaxLogs(2); ev != 1 {
		t.Errorf("shrink evicted %d, want 1", ev)
	}
	if logs = s.Logs(); len(logs) != 2 || logs[0].seq != 3 {
		t.Errorf("after shrink: %v", logs)
	}
	if ev := s.SetMaxLogs(4); ev != 0 {
		t.Errorf("grow evicted %d", ev)
	}
	s.PushLog("5", lg{seq: 5})
	if logs = s.Logs(); len(logs) != 3 || logs[2].seq != 5 {
		t.Errorf("after grow: %v", logs)
	}
}

// TestZeroCapacityShardDropsLogs: when the total budget is smaller than the
// shard count, the starved shards drop (and count) every push instead of
// growing.
func TestZeroCapacityShardDropsLogs(t *testing.T) {
	s := New[sess, lg](4, 2) // caps 1,1,0,0
	dropped := 0
	for i := 0; i < 20; i++ {
		if s.PushLog(fmt.Sprintf("id-%d", i), lg{seq: i}) {
			dropped++
		}
	}
	if got := len(s.Logs()); got > 2 {
		t.Errorf("retained %d logs with a total budget of 2", got)
	}
	if dropped+len(s.Logs()) != 20 {
		t.Errorf("dropped %d + retained %d != 20 pushed", dropped, len(s.Logs()))
	}
}

// TestConcurrentShardedEvictionOrder is the store half of the GC-vs-request
// interleaving check: 8 writers start/end sessions and push logs while a GC
// goroutine sweeps shard by shard (run under -race). Afterwards every shard's
// ring must hold its logs in strictly increasing sequence order (oldest-first
// eviction never reorders), and the eviction count must equal pushes minus
// retained.
func TestConcurrentShardedEvictionOrder(t *testing.T) {
	const workers, perWorker, budget = 8, 200, 64
	s := New[sess, lg](8, budget)
	var wg sync.WaitGroup
	var evictions, deletes int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev, del := 0, 0
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				s.Put(id, &sess{i}, time.Now())
				if _, ok := s.Get(id, time.Now()); !ok {
					// GC uses a 1h horizon below, so nothing live is swept.
					t.Error("live session vanished")
					return
				}
				if s.Delete(id) {
					del++
				}
				if s.PushLog(id, lg{id: id}) {
					ev++
				}
			}
			mu.Lock()
			evictions += int64(ev)
			deletes += int64(del)
			mu.Unlock()
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				s.GC(time.Now().Add(-time.Hour))
				s.ShardSizes()
				_ = s.Logs()
			}
		}
	}()
	wg.Wait()
	close(done)

	if deletes != workers*perWorker {
		t.Errorf("deletes = %d, want %d (GC stole a live session)", deletes, workers*perWorker)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after deleting everything", s.Len())
	}
	retained := 0
	for i := range s.shards {
		sh := &s.shards[i]
		snap := sh.logs.snapshot()
		retained += len(snap)
		for j := 1; j < len(snap); j++ {
			if snap[j].seq <= snap[j-1].seq {
				t.Fatalf("shard %d ring out of order at %d: seq %d then %d", i, j, snap[j-1].seq, snap[j].seq)
			}
		}
	}
	if int(evictions)+retained != workers*perWorker {
		t.Errorf("evictions %d + retained %d != %d pushed", evictions, retained, workers*perWorker)
	}
}
