package cs2p_test

import (
	"bytes"
	"fmt"
	"log"

	"cs2p"
)

// Example shows the end-to-end workflow of the paper's Figure 1: train the
// Prediction Engine on past sessions, export the deployable models, and run
// the per-session Algorithm-1 predictor.
func Example() {
	// Synthesize a small dataset (stand-in for your players' telemetry).
	cfg := cs2p.SmallTraceConfig()
	cfg.Sessions = 400
	data, _ := cs2p.GenerateTrace(cfg)

	// Offline training on the earlier sessions.
	train := &cs2p.Dataset{EpochSeconds: data.EpochSeconds, Sessions: data.Sessions[:300]}
	ecfg := cs2p.DefaultConfig()
	ecfg.Cluster.MinGroupSize = 8
	ecfg.HMM.NStates = 3
	ecfg.HMM.MaxIters = 10
	engine, err := cs2p.Train(train, ecfg)
	if err != nil {
		log.Fatal(err)
	}

	// Online prediction for a held-out session.
	s := data.Sessions[350]
	p := engine.NewSessionPredictor(s)
	initial := p.Predict() // cluster-median initial throughput
	p.Observe(s.Throughput[0])
	midstream := p.Predict() // HMM most-likely-state mean

	// Export and reload the deployable model store.
	var buf bytes.Buffer
	if err := engine.Export(train).Save(&buf); err != nil {
		log.Fatal(err)
	}
	store, err := cs2p.LoadModelStore(&buf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("initial prediction positive:", initial > 0)
	fmt.Println("midstream prediction positive:", midstream > 0)
	maxSize, err := store.MaxModelSize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("store fits 5KB budget:", maxSize <= 5*1024)
	// Output:
	// initial prediction positive: true
	// midstream prediction positive: true
	// store fits 5KB budget: true
}
