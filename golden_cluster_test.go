package cs2p_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"cs2p/internal/core"
	"cs2p/internal/engine"
	"cs2p/internal/httpapi"
	"cs2p/internal/registry"
	"cs2p/internal/router"
	"cs2p/internal/trace"
	"cs2p/internal/tracegen"
	"cs2p/internal/video"
)

// bootGoldenCluster trains the golden model, publishes it once, and boots
// three artifact-served replicas behind a router — the shared fixture for
// the cluster-parity and drain-parity golden tests. Returns the router, the
// front-end server, the golden header line, and the test split.
func bootGoldenCluster(t *testing.T) (*router.Router, *httptest.Server, string, *trace.Dataset) {
	t.Helper()
	cfg := tracegen.SmallConfig()
	cfg.Sessions = 300
	d, _ := tracegen.Generate(cfg)
	cut := d.Sessions[d.Len()*2/3].Start()
	train, test := d.SplitByTime(cut)
	ecfg := core.DefaultConfig()
	ecfg.Cluster.MinGroupSize = 10
	ecfg.HMM.NStates = 3
	ecfg.HMM.MaxIters = 12
	eng, err := core.Train(train, ecfg)
	if err != nil {
		t.Fatal(err)
	}

	// Trainer side: one published artifact.
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(eng.Export(train), core.TrainingMeta{
		TrainedAtUnix: 1700000000,
		TraceSessions: train.Len(),
		Clusters:      eng.Clusters(),
	}); err != nil {
		t.Fatal(err)
	}

	// Serving side: three replicas, each booted from the registry alone.
	var replicas []string
	for i := 0; i < 3; i++ {
		art, err := reg.Latest()
		if err != nil {
			t.Fatal(err)
		}
		svc, err := engine.NewServiceFromArtifact(art, ecfg, video.Default(), engine.ServiceOptions{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv := httpapi.NewServer(svc, func(e *core.Engine) *core.ModelStore { return e.Export(nil) })
		srv.SetLogf(func(string, ...any) {})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		replicas = append(replicas, ts.URL)
	}
	rt, err := router.New(router.Config{Replicas: replicas, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeAll(context.Background())
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	header := fmt.Sprintf("trace sessions=%d train=%d test=%d clusters=%d\n",
		d.Len(), train.Len(), test.Len(), eng.Clusters())
	return rt, front, header, test
}

// TestGoldenReplayClusterParity pins the serving-tier transparency
// contract: three cs2p-server replicas booted from one registry artifact,
// fronted by the consistent-hash router, must replay the golden protocol
// bit-identically to a single train-at-startup process — over JSON v1,
// single-op binary v2, and batched v2 alike. The fault-tolerant tier is
// allowed to change where a session's filter lives, never what it answers.
func TestGoldenReplayClusterParity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster parity trains a model and boots three replicas; slow for -short")
	}
	rt, front, header, test := bootGoldenCluster(t)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_replay.txt"))
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}

	jsonGot := driveReplay(t, front, header, test)
	if jsonGot != string(want) {
		t.Errorf("cluster JSON v1 replay diverged from the single-process golden file\ngot:\n%s\nwant:\n%s",
			jsonGot, string(want))
	}
	bc := httpapi.NewClient(front.URL)
	bc.SetWireBinary(true)
	binGot := driveReplayWith(t, bc, header, test)
	if binGot != string(want) {
		t.Errorf("cluster binary v2 replay diverged from the golden file\ngot:\n%s\nwant:\n%s",
			binGot, string(want))
	}
	batGot := driveReplayBatched(t, front, header, test)
	if batGot != string(want) {
		t.Errorf("cluster batched v2 replay diverged from the golden file\ngot:\n%s\nwant:\n%s",
			batGot, string(want))
	}
	if n := rt.PanicCount(); n != 0 {
		t.Errorf("%d router handler panics during golden replay", n)
	}
}

// TestGoldenReplayDrainParity pins the warm-handoff contract against the
// golden file: while golden-1 is mid-session, its home replica is
// administratively drained. The handoff must be warm — the exact exported
// filter state lands on a ring successor — so the full replay, drain and
// all, renders byte-identical to testdata/golden_replay.txt. Replay
// fallback (allowed only when the source is dead) would drift the
// rendering, so the tally is asserted to be warm-only.
func TestGoldenReplayDrainParity(t *testing.T) {
	if testing.Short() {
		t.Skip("drain parity trains a model and boots three replicas; slow for -short")
	}
	rt, front, header, test := bootGoldenCluster(t)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_replay.txt"))
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}

	drained := false
	hook := func(i, j int) {
		if i != 1 || j != 6 {
			return
		}
		home, ok := rt.SessionHome("golden-1")
		if !ok {
			t.Fatal("session golden-1 has no home at drain time")
		}
		res, err := rt.DrainReplica(context.Background(), home)
		if err != nil {
			t.Fatalf("drain %s: %v", home, err)
		}
		if res.Warm == 0 || res.Replay != 0 || res.Failed != 0 {
			t.Errorf("drain tally %+v; want warm-only with a live source", res)
		}
		if h, _ := rt.SessionHome("golden-1"); h == home {
			t.Errorf("session golden-1 still homed on drained replica %s", home)
		}
		drained = true
	}
	got := driveReplayWithHook(t, httpapi.NewClient(front.URL), header, test, hook)
	if !drained {
		t.Fatal("drain hook never fired; session golden-1 played fewer than 7 chunks")
	}
	if warm, replay, failed := rt.HandoffOutcomes(); warm == 0 || replay != 0 || failed != 0 {
		t.Errorf("handoff outcomes warm=%d replay=%d failed=%d; want warm only", warm, replay, failed)
	}
	if got != string(want) {
		t.Errorf("drained-mid-session replay diverged from the golden file — warm handoff must be bit-identical\ngot:\n%s\nwant:\n%s",
			got, string(want))
	}
	if n := rt.PanicCount(); n != 0 {
		t.Errorf("%d router handler panics during drained golden replay", n)
	}
}
