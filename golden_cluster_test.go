package cs2p_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"cs2p/internal/core"
	"cs2p/internal/engine"
	"cs2p/internal/httpapi"
	"cs2p/internal/registry"
	"cs2p/internal/router"
	"cs2p/internal/tracegen"
	"cs2p/internal/video"
)

// TestGoldenReplayClusterParity pins the serving-tier transparency
// contract: three cs2p-server replicas booted from one registry artifact,
// fronted by the consistent-hash router, must replay the golden protocol
// bit-identically to a single train-at-startup process — over JSON v1,
// single-op binary v2, and batched v2 alike. The fault-tolerant tier is
// allowed to change where a session's filter lives, never what it answers.
func TestGoldenReplayClusterParity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster parity trains a model and boots three replicas; slow for -short")
	}
	cfg := tracegen.SmallConfig()
	cfg.Sessions = 300
	d, _ := tracegen.Generate(cfg)
	cut := d.Sessions[d.Len()*2/3].Start()
	train, test := d.SplitByTime(cut)
	ecfg := core.DefaultConfig()
	ecfg.Cluster.MinGroupSize = 10
	ecfg.HMM.NStates = 3
	ecfg.HMM.MaxIters = 12
	eng, err := core.Train(train, ecfg)
	if err != nil {
		t.Fatal(err)
	}

	// Trainer side: one published artifact.
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(eng.Export(train), core.TrainingMeta{
		TrainedAtUnix: 1700000000,
		TraceSessions: train.Len(),
		Clusters:      eng.Clusters(),
	}); err != nil {
		t.Fatal(err)
	}

	// Serving side: three replicas, each booted from the registry alone.
	var replicas []string
	for i := 0; i < 3; i++ {
		art, err := reg.Latest()
		if err != nil {
			t.Fatal(err)
		}
		svc, err := engine.NewServiceFromArtifact(art, ecfg, video.Default(), engine.ServiceOptions{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv := httpapi.NewServer(svc, func(e *core.Engine) *core.ModelStore { return e.Export(nil) })
		srv.SetLogf(func(string, ...any) {})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		replicas = append(replicas, ts.URL)
	}
	rt, err := router.New(router.Config{Replicas: replicas, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeAll(context.Background())
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	header := fmt.Sprintf("trace sessions=%d train=%d test=%d clusters=%d\n",
		d.Len(), train.Len(), test.Len(), eng.Clusters())
	want, err := os.ReadFile(filepath.Join("testdata", "golden_replay.txt"))
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}

	jsonGot := driveReplay(t, front, header, test)
	if jsonGot != string(want) {
		t.Errorf("cluster JSON v1 replay diverged from the single-process golden file\ngot:\n%s\nwant:\n%s",
			jsonGot, string(want))
	}
	bc := httpapi.NewClient(front.URL)
	bc.SetWireBinary(true)
	binGot := driveReplayWith(t, bc, header, test)
	if binGot != string(want) {
		t.Errorf("cluster binary v2 replay diverged from the golden file\ngot:\n%s\nwant:\n%s",
			binGot, string(want))
	}
	batGot := driveReplayBatched(t, front, header, test)
	if batGot != string(want) {
		t.Errorf("cluster batched v2 replay diverged from the golden file\ngot:\n%s\nwant:\n%s",
			batGot, string(want))
	}
	if n := rt.PanicCount(); n != 0 {
		t.Errorf("%d router handler panics during golden replay", n)
	}
}
