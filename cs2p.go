// Package cs2p is a from-scratch Go implementation of CS2P, the
// data-driven throughput prediction system for video bitrate selection and
// adaptation from "CS2P: Improving Video Bitrate Selection and Adaptation
// with Data-Driven Throughput Prediction" (Sun et al., SIGCOMM 2016).
//
// CS2P trains per-cluster throughput models offline — grouping sessions
// that share the best-predicting combination of features (ISP, city,
// server, ...) and learning a Gaussian-emission hidden Markov model of each
// cluster's stateful throughput evolution — and predicts online: the first
// epoch from the cluster's median initial throughput, midstream epochs by
// filtering observations through the cluster HMM (the paper's Algorithm 1).
// The predictions plug into bitrate controllers such as FastMPC.
//
// Quick start:
//
//	dataset, _ := cs2p.GenerateTrace(cs2p.SmallTraceConfig()) // or load your own
//	engine, err := cs2p.Train(dataset, cs2p.DefaultConfig())
//	if err != nil { ... }
//	p := engine.NewSessionPredictor(session)
//	w0 := p.Predict()            // initial throughput estimate (Mbps)
//	p.Observe(measured)          // feed each epoch's measured throughput
//	w1 := p.Predict()            // next-epoch prediction
//
// The packages under internal/ hold the substrates (HMM, clustering,
// baselines, DASH player simulator, QoE model, MPC controller, HTTP
// service); this package re-exports the surface a downstream user needs.
// The cmd/ directory has runnable tools and examples/ has end-to-end
// programs.
package cs2p

import (
	"context"
	"io"

	"cs2p/internal/abr"
	"cs2p/internal/core"
	"cs2p/internal/predict"
	"cs2p/internal/qoe"
	"cs2p/internal/sim"
	"cs2p/internal/trace"
	"cs2p/internal/tracegen"
	"cs2p/internal/video"
)

// Dataset types (see internal/trace).
type (
	// Dataset is a collection of throughput-measurement sessions.
	Dataset = trace.Dataset
	// Session is one video session: features plus per-epoch throughput.
	Session = trace.Session
	// Features are the descriptive session attributes of the paper's
	// Table 2.
	Features = trace.Features
)

// Core engine types (see internal/core).
type (
	// Engine is a trained CS2P prediction engine.
	Engine = core.Engine
	// Config controls engine training.
	Config = core.Config
	// SessionPredictor runs the paper's Algorithm 1 for one session.
	SessionPredictor = core.SessionPredictor
	// ModelStore is the deployable, serializable model artifact.
	ModelStore = core.ModelStore
)

// Video/QoE/simulation types.
type (
	// VideoSpec describes a DASH bitrate ladder and player constraints.
	VideoSpec = video.Spec
	// QoEWeights are the QoE model coefficients of Yin et al.
	QoEWeights = qoe.Weights
	// QoEMetrics records what one playback experienced.
	QoEMetrics = qoe.Metrics
	// PlayResult is one simulated playback.
	PlayResult = sim.Result
	// Controller chooses bitrate levels (MPC, BB, RB, Fixed).
	Controller = abr.Controller
	// MidstreamPredictor is the common predictor interface.
	MidstreamPredictor = predict.Midstream
)

// Train builds a CS2P engine from past sessions (the offline stage of the
// paper's Figure 1).
func Train(train *Dataset, cfg Config) (*Engine, error) {
	return core.Train(train, cfg)
}

// TrainContext is Train with cancellation. Training fans out across
// cfg.Parallelism workers (0 = one per CPU, 1 = sequential); the trained
// engine is identical at every setting.
func TrainContext(ctx context.Context, train *Dataset, cfg Config) (*Engine, error) {
	return core.TrainContext(ctx, train, cfg)
}

// DefaultConfig returns the training configuration used by the paper's
// evaluation (6-state HMMs, feature-combination clustering).
func DefaultConfig() Config { return core.DefaultConfig() }

// LoadModelStore reads a serialized model store written by
// (*ModelStore).Save.
func LoadModelStore(r io.Reader) (*ModelStore, error) { return core.LoadModelStore(r) }

// GenerateTrace synthesizes an iQiyi-like throughput dataset (the stand-in
// for the paper's proprietary trace; see DESIGN.md).
func GenerateTrace(cfg TraceConfig) (*Dataset, *GroundTruth) { return tracegen.Generate(cfg) }

// TraceConfig parameterizes the synthetic dataset.
type TraceConfig = tracegen.Config

// GroundTruth exposes the synthetic population's hidden cluster models.
type GroundTruth = tracegen.GroundTruth

// DefaultTraceConfig is the laptop-scale default (6000 sessions).
func DefaultTraceConfig() TraceConfig { return tracegen.DefaultConfig() }

// SmallTraceConfig is a fast profile for tests and examples.
func SmallTraceConfig() TraceConfig { return tracegen.SmallConfig() }

// ReadTraceCSV / WriteTraceCSV round-trip datasets in the one-session-per-row
// CSV layout of cmd/tracegen.
func ReadTraceCSV(r io.Reader) (*Dataset, error) { return trace.ReadCSV(r) }

// WriteTraceCSV writes the dataset as CSV.
func WriteTraceCSV(w io.Writer, d *Dataset) error { return trace.WriteCSV(w, d) }

// DefaultVideo returns the paper's evaluation video: a 260-second clip at
// 350/600/1000/2000/3000 kbps with 6-second chunks and a 30-second buffer.
func DefaultVideo() VideoSpec { return video.Default() }

// DefaultQoEWeights returns the paper's QoE coefficients (lambda=1,
// mu=mu_s=3000).
func DefaultQoEWeights() QoEWeights { return qoe.DefaultWeights() }

// MPC returns the FastMPC bitrate controller the paper pairs CS2P with.
func MPC() Controller { return abr.MPC{} }

// BufferBased returns the BB baseline controller.
func BufferBased() Controller { return abr.BB{} }

// RateBased returns the RB baseline controller.
func RateBased() Controller { return abr.RB{} }

// Play simulates one playback of spec over the session's measured
// throughput with the given controller and predictor (nil for none),
// returning the QoE outcome.
func Play(spec VideoSpec, ctrl Controller, pred MidstreamPredictor, throughputMbps []float64, w QoEWeights) PlayResult {
	return sim.Play(spec, ctrl, pred, throughputMbps, w)
}

// NormalizedQoE plays the session and normalizes its QoE by the offline
// optimal (perfect future knowledge), the paper's n-QoE metric.
func NormalizedQoE(spec VideoSpec, ctrl Controller, pred MidstreamPredictor, throughputMbps []float64, w QoEWeights) float64 {
	return sim.NormalizedQoE(spec, ctrl, pred, throughputMbps, w)
}
