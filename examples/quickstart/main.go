// Quickstart: generate a synthetic throughput trace, train CS2P, and
// predict a held-out session — the paper's Figure 1 workflow end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"cs2p"
)

func main() {
	// 1. Get a dataset. (In production this is your players' measured
	// per-epoch throughput; here we synthesize one.)
	cfg := cs2p.SmallTraceConfig()
	cfg.Sessions = 800
	data, _ := cs2p.GenerateTrace(cfg)
	fmt.Printf("dataset: %d sessions, %d epochs\n", data.Len(), len(data.AllEpochThroughputs()))

	// 2. Split train/test by time (the paper trains on day 1, tests on
	// day 2) and train the engine.
	cut := data.Sessions[data.Len()*3/4].Start()
	train, test := data.SplitByTime(cut)
	ecfg := cs2p.DefaultConfig()
	ecfg.Cluster.MinGroupSize = 10
	engine, err := cs2p.Train(train, ecfg)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("trained %d cluster models from %d sessions\n", engine.Clusters(), train.Len())

	// 3. Predict a new session with Algorithm 1: the initial epoch from
	// the cluster median, midstream epochs from the cluster HMM.
	s := test.Sessions[0]
	p := engine.NewSessionPredictor(s)
	fmt.Printf("\nsession %s (cluster %s):\n", s.ID, p.ClusterID())
	fmt.Printf("%-6s %-12s %-12s %s\n", "epoch", "predicted", "actual", "error")
	var errSum float64
	n := 0
	for t, actual := range s.Throughput {
		pred := p.Predict()
		e := math.Abs(pred-actual) / actual
		if t < 8 {
			fmt.Printf("%-6d %-12.2f %-12.2f %.1f%%\n", t, pred, actual, 100*e)
		}
		errSum += e
		n++
		p.Observe(actual)
	}
	fmt.Printf("mean error over %d epochs: %.1f%%\n", n, 100*errSum/float64(n))

	// 4. Ship the models: the store is what the Prediction Engine sends
	// to video servers or players (<5 KB per cluster).
	store := engine.Export(train)
	maxSize, err := store.MaxModelSize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel store: %d clusters, largest artifact %d bytes\n",
		engine.Clusters(), maxSize)
}
