// Lookahead: use CS2P's multi-epoch horizon predictions for the CDN
// use case §7.2 motivates — estimating a whole video's download time early
// in the session so a server can schedule capacity.
//
//	go run ./examples/lookahead
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"cs2p"
)

func main() {
	cfg := cs2p.SmallTraceConfig()
	cfg.Sessions = 800
	data, _ := cs2p.GenerateTrace(cfg)
	cut := data.Sessions[data.Len()*2/3].Start()
	train, test := data.SplitByTime(cut)
	ecfg := cs2p.DefaultConfig()
	ecfg.Cluster.MinGroupSize = 10
	engine, err := cs2p.Train(train, ecfg)
	if err != nil {
		log.Fatalf("training: %v", err)
	}

	// After observing the first 3 epochs of a session, predict the next
	// 10 epochs and estimate how long downloading a 12 MB segment batch
	// will take; compare with the truth.
	const (
		warmup  = 3
		horizon = 10
		batchMb = 96.0 // megabits
	)
	var estErrs []float64
	fmt.Printf("%-12s %-14s %-14s %s\n", "session", "predicted(s)", "actual(s)", "error")
	shown := 0
	for _, s := range test.Sessions {
		if len(s.Throughput) < warmup+horizon {
			continue
		}
		p := engine.NewSessionPredictor(s)
		for t := 0; t < warmup; t++ {
			p.Observe(s.Throughput[t])
		}
		// Expected download seconds over the horizon: batch split evenly.
		var predTime, actTime float64
		perEpochMb := batchMb / float64(horizon)
		for k := 1; k <= horizon; k++ {
			predTime += perEpochMb / math.Max(p.PredictAhead(k), 0.05)
			actTime += perEpochMb / math.Max(s.Throughput[warmup+k-1], 0.05)
		}
		e := math.Abs(predTime-actTime) / actTime
		estErrs = append(estErrs, e)
		if shown < 8 {
			fmt.Printf("%-12s %-14.1f %-14.1f %.1f%%\n", s.ID, predTime, actTime, 100*e)
			shown++
		}
	}
	sort.Float64s(estErrs)
	fmt.Printf("\ndownload-time estimate over %d sessions: median error %.1f%%, p90 %.1f%%\n",
		len(estErrs), 100*estErrs[len(estErrs)/2], 100*estErrs[len(estErrs)*9/10])
}
