// ABR comparison: replay the paper's 260-second video over held-out
// sessions with four adaptation strategies — CS2P+MPC, Harmonic-Mean+MPC
// (the prior state of the art), Buffer-Based, and Rate-Based — and compare
// QoE, bitrate, startup and rebuffering (the §7.3 evaluation in miniature).
//
//	go run ./examples/abr-comparison
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"cs2p"
	"cs2p/internal/predict"
)

func main() {
	cfg := cs2p.SmallTraceConfig()
	cfg.Sessions = 900
	data, _ := cs2p.GenerateTrace(cfg)
	cut := data.Sessions[data.Len()*2/3].Start()
	train, test := data.SplitByTime(cut)

	ecfg := cs2p.DefaultConfig()
	ecfg.Cluster.MinGroupSize = 10
	engine, err := cs2p.Train(train, ecfg)
	if err != nil {
		log.Fatalf("training: %v", err)
	}

	spec := cs2p.DefaultVideo()
	w := cs2p.DefaultQoEWeights()
	// Only sessions long enough to cover the whole video.
	var sessions []*cs2p.Session
	for _, s := range test.Sessions {
		if len(s.Throughput) >= spec.NumChunks() {
			sessions = append(sessions, s)
			if len(sessions) == 80 {
				break
			}
		}
	}

	type strat struct {
		name string
		ctrl cs2p.Controller
		pred func(*cs2p.Session) cs2p.MidstreamPredictor
	}
	strategies := []strat{
		{"CS2P+MPC", cs2p.MPC(), func(s *cs2p.Session) cs2p.MidstreamPredictor { return engine.NewSession(s) }},
		{"HM+MPC", cs2p.MPC(), func(s *cs2p.Session) cs2p.MidstreamPredictor { return predict.HM{}.NewSession(s) }},
		{"BB", cs2p.BufferBased(), nil},
		{"HM+RB", cs2p.RateBased(), func(s *cs2p.Session) cs2p.MidstreamPredictor { return predict.HM{}.NewSession(s) }},
	}

	fmt.Printf("%-9s %-12s %-14s %-10s %-10s %s\n",
		"strategy", "median_nqoe", "avg_bitrate", "startup", "rebuffer", "good_ratio")
	for _, st := range strategies {
		var nqoe, br, su, rb, gr []float64
		for _, s := range sessions {
			var p cs2p.MidstreamPredictor
			if st.pred != nil {
				p = st.pred(s)
			}
			res := cs2p.Play(spec, st.ctrl, p, s.Throughput, w)
			if v := cs2p.NormalizedQoE(spec, st.ctrl, resetPred(st, s), s.Throughput, w); !math.IsNaN(v) {
				nqoe = append(nqoe, v)
			}
			br = append(br, res.Metrics.AvgBitrateKbps())
			su = append(su, res.Metrics.StartupSeconds)
			rb = append(rb, res.Metrics.TotalRebufferSeconds())
			gr = append(gr, res.Metrics.GoodRatio())
		}
		fmt.Printf("%-9s %-12.3f %-14s %-10s %-10s %.3f\n",
			st.name, median(nqoe),
			fmt.Sprintf("%.0f kbps", mean(br)),
			fmt.Sprintf("%.2f s", mean(su)),
			fmt.Sprintf("%.2f s", mean(rb)),
			mean(gr))
	}
}

// resetPred builds a fresh predictor for the normalized-QoE replay (the
// predictor is stateful, so each playback needs its own).
func resetPred(st struct {
	name string
	ctrl cs2p.Controller
	pred func(*cs2p.Session) cs2p.MidstreamPredictor
}, s *cs2p.Session) cs2p.MidstreamPredictor {
	if st.pred == nil {
		return nil
	}
	return st.pred(s)
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 0 {
		return math.NaN()
	}
	return s[len(s)/2]
}
