// Server-client: run the CS2P Prediction Engine as an HTTP service on
// localhost and drive a player session against it — the paper's §6
// prototype (Dash.js player + prediction server) end to end in one process.
//
//	go run ./examples/server-client
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"cs2p"
	"cs2p/internal/core"
	"cs2p/internal/engine"
	"cs2p/internal/httpapi"
	"cs2p/internal/predict"
	"cs2p/internal/video"
)

func main() {
	// Train the engine (server side).
	cfg := cs2p.SmallTraceConfig()
	cfg.Sessions = 700
	data, _ := cs2p.GenerateTrace(cfg)
	cut := data.Sessions[data.Len()*2/3].Start()
	train, test := data.SplitByTime(cut)
	ecfg := cs2p.DefaultConfig()
	ecfg.Cluster.MinGroupSize = 10
	eng, err := cs2p.Train(train, ecfg)
	if err != nil {
		log.Fatalf("training: %v", err)
	}

	// Serve it over HTTP on an ephemeral port.
	svc := engine.NewService(eng, ecfg, video.Default())
	srv := httpapi.NewServer(svc, func(e *core.Engine) *core.ModelStore { return e.Export(train) })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			log.Printf("server stopped: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("prediction engine serving on %s\n", base)

	// Player side: one prediction round trip per chunk, like the Dash.js
	// prototype.
	client := httpapi.NewClient(base)
	if err := client.Healthz(); err != nil {
		log.Fatalf("healthz: %v", err)
	}
	s := test.Sessions[0]
	start, err := client.StartSession("demo", s.Features, s.StartUnix)
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	fmt.Printf("session %s: cluster=%s initial=%.2f Mbps suggested_start=%.0f kbps rebuffer_forecast=%.1fs\n",
		s.ID, start.ClusterID, start.InitialPredictionMbps, start.SuggestedInitialKbps, start.RebufferEstimateSec)

	pred, err := client.NewSessionPredictor("demo", s.Features, s.StartUnix)
	if err != nil {
		log.Fatalf("predictor: %v", err)
	}
	res := cs2p.Play(cs2p.DefaultVideo(), cs2p.MPC(), pred, s.Throughput, cs2p.DefaultQoEWeights())
	fmt.Printf("played %d chunks: qoe=%.0f avg_bitrate=%.0fkbps startup=%.2fs rebuffer=%.2fs switches=%d\n",
		res.Chunks, res.QoE, res.Metrics.AvgBitrateKbps(), res.Metrics.StartupSeconds,
		res.Metrics.TotalRebufferSeconds(), res.Metrics.Switches())

	// For contrast, the same session with the local Harmonic-Mean
	// predictor (no server).
	hm := cs2p.Play(cs2p.DefaultVideo(), cs2p.MPC(), predict.HM{}.NewSession(s), s.Throughput, cs2p.DefaultQoEWeights())
	fmt.Printf("HM+MPC baseline:      qoe=%.0f avg_bitrate=%.0fkbps startup=%.2fs rebuffer=%.2fs switches=%d\n",
		hm.QoE, hm.Metrics.AvgBitrateKbps(), hm.Metrics.StartupSeconds,
		hm.Metrics.TotalRebufferSeconds(), hm.Metrics.Switches())

	// Decentralized alternative (§5.3): download the cluster model once
	// and predict locally — no per-chunk round trips.
	local, err := client.FetchLocalPredictor(s.Features)
	if err != nil {
		log.Fatalf("model download: %v", err)
	}
	local.Observe(s.Throughput[0])
	fmt.Printf("client-side model (cluster %s) predicts %.2f Mbps after one epoch\n",
		local.ClusterID(), local.Predict())

	// Report the QoE log back to the engine, as the player does on end.
	if err := client.Log(engine.SessionLog{
		SessionID: "demo", QoE: res.QoE, AvgBitrateKbps: res.Metrics.AvgBitrateKbps(),
		RebufferSeconds: res.Metrics.TotalRebufferSeconds(),
		StartupSeconds:  res.Metrics.StartupSeconds, Strategy: "CS2P+MPC",
	}); err != nil {
		log.Fatalf("log: %v", err)
	}
	fmt.Printf("server recorded %d session log(s)\n", len(svc.Logs()))
}
