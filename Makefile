# Developer entry points. `make check` is the gate CI runs; the race target
# covers the packages with concurrent code paths (the training worker pool
# and its consumers, plus the serving stack and the fault-injection suite).

GO ?= go
RACE_PKGS := ./internal/parallel ./internal/core ./internal/hmm ./internal/cluster ./internal/engine ./internal/httpapi ./internal/faultinject

.PHONY: check vet build test race chaos bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Aggressive fault-injection schedule (25% drops + 5xxs + truncation +
# latency + a mid-playback restart) through the real client/server stack,
# under the race detector. See DESIGN.md §8.
chaos:
	CS2P_CHAOS=1 $(GO) test -race -run 'TestChaos' -v ./internal/httpapi

# Microbenchmarks of the training hot paths (allocation-counted).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHMMTrain$$|BenchmarkEngineTrain|BenchmarkClusterSelect' -benchmem .
