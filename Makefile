# Developer entry points. `make check` is the gate CI runs; the race target
# covers the packages with concurrent code paths (the training worker pool
# and its two consumers).

GO ?= go
RACE_PKGS := ./internal/parallel ./internal/core ./internal/hmm ./internal/cluster

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Microbenchmarks of the training hot paths (allocation-counted).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHMMTrain$$|BenchmarkEngineTrain|BenchmarkClusterSelect' -benchmem .
