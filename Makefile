# Developer entry points. `make check` is the gate CI runs; the race target
# covers the packages with concurrent code paths (the training worker pool
# and its consumers, plus the serving stack and the fault-injection suite).

GO ?= go
RACE_PKGS := ./internal/parallel ./internal/core ./internal/hmm ./internal/cluster ./internal/engine ./internal/httpapi ./internal/faultinject ./internal/obs ./internal/sessionstore ./internal/registry ./internal/wire ./internal/router ./internal/loadgen

# COVER_FLOOR is the minimum total statement coverage `make cover` accepts.
# The seed measured 85.3%; the floor leaves one point of slack for noise.
COVER_FLOOR := 84.0

.PHONY: check vet build test race chaos cluster-chaos bench bench-serve bench-load cover fuzz publish-demo

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Aggressive fault-injection schedule (25% drops + 5xxs + truncation +
# latency + a mid-playback restart) through the real client/server stack,
# under the race detector. See DESIGN.md §8.
chaos:
	CS2P_CHAOS=1 $(GO) test -race -run 'TestChaos' -v ./internal/httpapi

# Cluster chaos: a trained 3-replica cluster behind the consistent-hash
# router, with replicas killed and revived mid-playback, the probe path
# partitioned, and a slow replica — plus the golden replay driven through
# the router for bit-identical parity with one process. See DESIGN.md §13.
cluster-chaos:
	$(GO) test -race -run 'TestClusterChaos|TestClusterModel|TestRouterConcurrentFailover' -v ./internal/router
	$(GO) test -run 'TestGoldenReplayClusterParity|TestGoldenReplayDrainParity' -v .

# Microbenchmarks of the training hot paths (allocation-counted).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHMMTrain$$|BenchmarkEngineTrain|BenchmarkClusterSelect' -benchmem .

# Serving-path benchmarks: mixed start/observe/predict traffic through the
# sharded session store at shards=1/4/16 (engine), plus the JSON-vs-binary
# wire comparison through the full handler stack at batch sizes 1/16/64
# (httpapi). Allocation-counted, rendered as test2json events for trend
# tooling. See DESIGN.md §10 and §12.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServiceConcurrent|BenchmarkWireServe' -benchmem -json ./internal/engine ./internal/httpapi > BENCH_serve.json
	@awk -F'"Output":"' 'NF>1 { s=$$2; sub(/"}$$/,"",s); if (s ~ /^Benchmark.*\\t$$/) { gsub(/\\t/,"",s); printf "%s", s } else if (s ~ /ns\/op/) { gsub(/\\t/,"  ",s); gsub(/\\n/,"",s); print s } }' BENCH_serve.json

# Open-loop load run against in-process serving tiers: one direct-server
# scenario and one 3-replica router-fronted scenario, each with a burst
# arrival profile, a short soak, and a capacity search, written to
# BENCH_load.json (schema-versioned; loadgen.ParseReport validates it).
# Latency is intended-start-to-completion, so coordinated omission cannot
# hide tail degradation. The run is gated against the committed
# BENCH_baseline.json: capacity more than 10% below baseline fails the
# build (refresh the baseline deliberately with `make bench-baseline`).
# See DESIGN.md §14.
bench-load:
	$(GO) run ./cmd/cs2p-loadgen -self -mode burst -rps 10 -burst-rps 120 \
		-burst-every 2s -burst-len 500ms -duration 10s -chunk-interval 50ms \
		-max-chunks 6 -capacity -trial 3s -bisect 2 -soak 5s -soak-rps 20 \
		-baseline BENCH_baseline.json -max-regression 0.10 \
		-out BENCH_load.json
	@echo "wrote BENCH_load.json"

# Re-measure and overwrite the committed capacity baseline (same shape as
# bench-load, no gate). Commit the result when a capacity change is intended.
bench-baseline:
	$(GO) run ./cmd/cs2p-loadgen -self -mode burst -rps 10 -burst-rps 120 \
		-burst-every 2s -burst-len 500ms -duration 10s -chunk-interval 50ms \
		-max-chunks 6 -capacity -trial 3s -bisect 2 -soak 5s -soak-rps 20 \
		-out BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"

# Total statement coverage across every package, gated on COVER_FLOOR.
# Writes cover.out for `go tool cover -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
	{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Short fuzz pass over the HTTP JSON decoders, the binary wire decoders, and
# the model-artifact loaders (CI runs this; longer local runs: go test -fuzz
# FuzzLoadArtifact -fuzztime 5m ./internal/registry).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzStartSession -fuzztime=10s ./internal/httpapi
	$(GO) test -run '^$$' -fuzz FuzzObserve -fuzztime=10s ./internal/httpapi
	$(GO) test -run '^$$' -fuzz FuzzIngest -fuzztime=10s ./internal/httpapi
	$(GO) test -run '^$$' -fuzz FuzzBatchRequest -fuzztime=10s ./internal/httpapi
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime=10s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzLoadModelStore -fuzztime=10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzLoadArtifact -fuzztime=10s ./internal/registry

# End-to-end registry demo: generate a synthetic trace, train twice, and
# publish v1 and v2 into a temporary registry — the directory a
# `cs2p-server -model-dir` boots from and watches. Prints the registry path.
publish-demo:
	$(eval DEMO_DIR := $(shell mktemp -d))
	$(GO) run ./cmd/tracegen -sessions 400 -o $(DEMO_DIR)/trace.csv
	$(GO) run ./cmd/cs2p-train -trace $(DEMO_DIR)/trace.csv -registry-dir $(DEMO_DIR)/registry -holdout-frac 0.2 -keep 5
	$(GO) run ./cmd/cs2p-train -trace $(DEMO_DIR)/trace.csv -registry-dir $(DEMO_DIR)/registry -holdout-frac 0.2 -keep 5
	@echo "registry published at $(DEMO_DIR)/registry:"
	@ls $(DEMO_DIR)/registry
	@echo "serve it with: go run ./cmd/cs2p-server -model-dir $(DEMO_DIR)/registry"
