package cs2p_test

import (
	"bytes"
	"math"
	"testing"

	"cs2p"
)

// TestPublicAPIEndToEnd exercises the full public surface: generate a
// trace, train, predict, simulate a playback, and round-trip the model
// store — the same flow the README quick start shows.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := cs2p.SmallTraceConfig()
	cfg.Sessions = 400
	data, gt := cs2p.GenerateTrace(cfg)
	if data.Len() != 400 || gt.Clusters() == 0 {
		t.Fatalf("trace generation: %d sessions, %d clusters", data.Len(), gt.Clusters())
	}

	// CSV round trip.
	var buf bytes.Buffer
	if err := cs2p.WriteTraceCSV(&buf, data); err != nil {
		t.Fatal(err)
	}
	loaded, err := cs2p.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != data.Len() {
		t.Fatal("CSV round trip lost sessions")
	}

	// Train on the first 300 sessions, predict on a held-out one.
	train := &cs2p.Dataset{EpochSeconds: data.EpochSeconds, Sessions: data.Sessions[:300]}
	ecfg := cs2p.DefaultConfig()
	ecfg.Cluster.MinGroupSize = 8
	ecfg.HMM.NStates = 3
	ecfg.HMM.MaxIters = 12
	ecfg.MinClusterSessions = 8
	engine, err := cs2p.Train(train, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	s := data.Sessions[350]
	p := engine.NewSessionPredictor(s)
	if init := p.Predict(); math.IsNaN(init) || init <= 0 {
		t.Fatalf("initial prediction = %v", init)
	}
	p.Observe(s.Throughput[0])
	if mid := p.Predict(); math.IsNaN(mid) || mid <= 0 {
		t.Fatalf("midstream prediction = %v", mid)
	}

	// Simulate a playback with MPC + CS2P.
	res := cs2p.Play(cs2p.DefaultVideo(), cs2p.MPC(), engine.NewSession(s), s.Throughput, cs2p.DefaultQoEWeights())
	if res.Chunks == 0 {
		t.Fatal("playback played nothing")
	}
	if err := res.Metrics.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := cs2p.NormalizedQoE(cs2p.DefaultVideo(), cs2p.BufferBased(), nil, s.Throughput, cs2p.DefaultQoEWeights()); !math.IsNaN(n) && (n < -1 || n > 1.01) {
		t.Errorf("BB n-QoE = %v out of range", n)
	}

	// Model store round trip.
	store := engine.Export(train)
	var sbuf bytes.Buffer
	if err := store.Save(&sbuf); err != nil {
		t.Fatal(err)
	}
	back, err := cs2p.LoadModelStore(&sbuf)
	if err != nil {
		t.Fatal(err)
	}
	sp := back.NewSessionPredictor(s.Features)
	if math.IsNaN(sp.Predict()) {
		t.Error("store predictor should predict")
	}
	max, err := back.MaxModelSize()
	if err != nil {
		t.Fatal(err)
	}
	if max > 5*1024 {
		t.Errorf("model artifact exceeds the paper's 5KB budget: %d", max)
	}
}

func TestControllersExported(t *testing.T) {
	for _, ctrl := range []cs2p.Controller{cs2p.MPC(), cs2p.BufferBased(), cs2p.RateBased()} {
		if ctrl.Name() == "" {
			t.Error("controller without a name")
		}
	}
}
