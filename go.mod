module cs2p

go 1.22
